"""The async serving front-end (repro.serve / ``repro serve``).

Everything runs against a real :class:`SweepServer` bound to an
ephemeral localhost port inside ``asyncio.run`` -- the same listener,
framing sniff, planner hand-off and admission gate production uses.
Pins: JSONL and HTTP framings on one port, warm requests served from
cache, per-query and per-request error isolation, explicit overload
rejection, the ``serve.request`` fault site, ``--max-requests``
shutdown, and the telemetry the report's serving section reads.
"""

import asyncio
import json

import pytest

from repro import faults, telemetry
from repro.faults import FaultPlan, FaultSpec
from repro.serve import SweepServer
from repro.sweep import planner
from repro.sweep.runner import _RESULT_CACHES
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv(planner.ENV_SURFACE_CACHE, raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    monkeypatch.setattr(telemetry, "_RECORDER", None)
    monkeypatch.setattr(telemetry, "_SOURCE", None)
    monkeypatch.setattr(planner, "_DEFAULT_CACHE", None)
    _RESULT_CACHES.clear()
    yield
    faults.install(None)
    telemetry.install(None)
    _RESULT_CACHES.clear()


#: A mixed, coalescable batch in wire format: two itlb queries that
#: share one superset replay, plus an icache point query.
QUERIES = [
    {"kind": "curve", "cache": "itlb", "associativity": 1,
     "sizes": [8, 16, 32]},
    {"kind": "isoratio", "cache": "itlb", "sizes": [8, 16, 32],
     "associativities": [1, 2], "target": 0.5},
    {"kind": "stats", "cache": "icache", "associativity": 2,
     "size": 64},
]


def _request(queries=None, **extra):
    body = {"id": "r1", "workload": "monomorphic", "quick": True,
            "queries": QUERIES if queries is None else queries}
    body.update(extra)
    return body


async def _jsonl(port, *requests):
    """Send request dicts down one JSONL connection; list of replies."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    replies = []
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
    finally:
        writer.close()
    return replies


async def _http(port, method, body=None):
    """One HTTP exchange; returns (status_code, parsed_body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        blob = json.dumps(body).encode() if body is not None else b""
        writer.write(
            f"{method} / HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(blob)}\r\n\r\n".encode() + blob)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload)


def _serve(tmp_path, coro_factory, **server_kwargs):
    """Run *coro_factory(server, port)* against a live server."""
    async def main():
        server = SweepServer(TraceStore(tmp_path), **server_kwargs)
        port = await server.start()
        try:
            return await coro_factory(server, port)
        finally:
            await server.close()
    return asyncio.run(main())


class TestJsonLines:
    def test_cold_request_coalesces_and_answers_in_order(self,
                                                         tmp_path):
        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request())
            return reply

        reply = _serve(tmp_path, scenario)
        assert reply["ok"] and reply["id"] == "r1"
        assert reply["workload"] == "monomorphic"
        kinds = [entry["kind"] for entry in reply["results"]]
        assert kinds == ["curve", "isoratio", "stats"]
        assert all(entry["ok"] for entry in reply["results"])
        assert reply["results"][0]["answer"]["points"]
        assert reply["results"][1]["answer"]["thresholds"]
        assert "hits" in reply["results"][2]["answer"]
        stats = reply["stats"]
        assert stats["queries"] == 3
        # Two itlb queries share one replay; the icache query is its
        # own group.
        assert stats["replays"] == 2
        assert stats["coalesced"] == 2
        assert stats["served_from_cache"] == 0

    def test_warm_request_is_served_from_cache(self, tmp_path):
        async def scenario(server, port):
            return await _jsonl(port, _request(), _request(id="r2"))

        cold, warm = _serve(tmp_path, scenario)
        assert cold["stats"]["replays"] == 2
        assert warm["stats"]["replays"] == 0
        assert warm["stats"]["served_from_cache"] == 3
        # Warm answers are byte-identical to cold ones.
        assert warm["results"] == cold["results"]

    def test_malformed_query_fails_alone(self, tmp_path):
        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request(
                queries=QUERIES[:1] + [{"kind": "stats",
                                        "cache": "l4"}]))
            return reply

        reply = _serve(tmp_path, scenario)
        assert reply["ok"]
        good, bad = reply["results"]
        assert good["ok"]
        assert not bad["ok"] and "cache kind" in bad["error"]

    def test_malformed_request_fails_alone(self, tmp_path):
        async def scenario(server, port):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"this is not json\n")
            writer.write(json.dumps(_request()).encode() + b"\n")
            await writer.drain()
            bad = json.loads(await reader.readline())
            good = json.loads(await reader.readline())
            writer.close()
            return bad, good, server.errors

        bad, good, errors = _serve(tmp_path, scenario)
        assert not bad["ok"] and "bad request" in bad["error"]
        assert good["ok"]
        assert errors == 1

    def test_empty_queries_list_is_an_error(self, tmp_path):
        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request(queries=[]))
            return reply

        reply = _serve(tmp_path, scenario)
        assert not reply["ok"]
        assert "non-empty 'queries'" in reply["error"]


class TestHttp:
    def test_post_and_health_share_the_port(self, tmp_path):
        async def scenario(server, port):
            status, body = await _http(port, "POST", _request())
            health_status, health = await _http(port, "GET")
            return status, body, health_status, health

        status, body, health_status, health = _serve(tmp_path, scenario)
        assert status == 200
        assert body["ok"] and len(body["results"]) == 3
        assert health_status == 200
        assert health["ok"] and health["queue_limit"] == 4
        assert health["requests"] == 1

    def test_bad_post_is_a_400(self, tmp_path):
        async def scenario(server, port):
            return await _http(port, "POST", {"id": "r9",
                                              "queries": "nope"})

        status, body = _serve(tmp_path, scenario)
        assert status == 400
        assert not body["ok"]


class TestAdmissionControl:
    def test_uncached_request_is_rejected_at_zero_limit(self, tmp_path):
        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request())
            status, body = await _http(port, "POST", _request())
            return reply, status, body, server.rejected

        reply, status, body, rejected = _serve(tmp_path, scenario,
                                               queue_limit=0)
        assert not reply["ok"]
        assert reply["status"] == "overloaded"
        assert "retry" in reply["error"]
        assert status == 503 and body["status"] == "overloaded"
        assert rejected == 2

    def test_cached_request_bypasses_the_replay_gate(self, tmp_path):
        # Warm the caches with a normal server, then serve the same
        # batch at queue_limit=0: pure cache reads need no slot.
        async def scenario(server, port):
            return await _jsonl(port, _request())

        _serve(tmp_path, scenario)  # warm (shared default SurfaceCache)

        (reply,) = _serve(tmp_path, scenario, queue_limit=0)
        assert reply["ok"]
        assert reply["stats"]["replays"] == 0
        assert reply["stats"]["served_from_cache"] == 3


class TestFaultSite:
    def test_corrupted_request_bytes_become_bad_requests(self,
                                                         tmp_path):
        faults.install(FaultPlan(seed=3, specs=(
            FaultSpec(site="serve.request", kind="corrupt"),)))

        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request())
            return reply, server.errors

        reply, errors = _serve(tmp_path, scenario)
        # A flipped bit either breaks the JSON (bad request) or lands
        # in a field value (a per-query error / normal answer); the
        # connection and the server survive regardless.
        assert isinstance(reply, dict)
        assert errors <= 1

    def test_io_error_fault_is_an_error_response(self, tmp_path):
        faults.install(FaultPlan(seed=3, specs=(
            FaultSpec(site="serve.request", kind="io-error"),)))

        async def scenario(server, port):
            (reply,) = await _jsonl(port, _request())
            return reply, server.errors

        reply, errors = _serve(tmp_path, scenario)
        assert not reply["ok"]
        assert "bad request" in reply["error"]
        assert errors == 1


class TestLifecycle:
    def test_max_requests_stops_the_server(self, tmp_path):
        async def main():
            server = SweepServer(TraceStore(tmp_path), max_requests=2)
            port = await server.start()
            runner = asyncio.ensure_future(server._done.wait())
            await _jsonl(port, _request(), _request(id="r2"))
            await asyncio.wait_for(runner, timeout=10)
            await server.close()
            return server.requests_served

        assert asyncio.run(main()) == 2

    def test_counters_feed_the_report_serving_section(self, tmp_path):
        telemetry.install(tmp_path / "run" / "telemetry", fresh=True)

        async def scenario(server, port):
            await _jsonl(port, _request(), _request(id="r2"))

        _serve(tmp_path, scenario)
        telemetry.finalize()
        telemetry.install(None)

        from repro.telemetry import report as telemetry_report
        data = telemetry_report.load_run(tmp_path / "run")
        report = telemetry_report.build_report(data)
        serving = report["serving"]
        assert serving["requests"] == 2
        assert serving["queries"] == 6
        assert serving["replays"] == 2
        assert serving["coalesced"] == 2
        assert serving["cache_hits_memory"] == 3
        # Replay observations: the itlb group answered 2 queries, the
        # icache group 1 -- mean 1.5.
        assert serving["queries_per_replay"] == 1.5
        text = telemetry_report.render(report)
        assert "query planner / serving:" in text
