"""Pins for the columnar (struct-of-arrays) trace pipeline.

Three layers of guarantees:

* **sequence contract** -- a :class:`~repro.trace.columnar.Trace`
  still quacks like a ``Sequence[TraceEvent]``: indexing, zero-copy
  slicing, iteration, equality against event lists;
* **equivalence** -- for every registered workload, the columnar path
  yields the same events, the same itlb/icache statistics (under both
  measurement-semantics versions) and the same sweep surfaces as the
  legacy dataclass path;
* **zero-object loads** -- deserializing a stored trace constructs no
  ``TraceEvent`` at all, and store round-trips hold for the empty
  trace and a >1M-event trace.
"""

import pickle
from array import array

import pytest

import repro.trace.events as events_module
from repro.trace.columnar import _INT, Trace, TraceBuilder, as_trace
from repro.trace.events import TraceEvent, split_warmup
from repro.trace.cachesim import simulate_icache, simulate_itlb
from repro.trace.semantics import SEMANTICS, warmup_cut
from repro.workloads import names
from repro.workloads.store import TraceStore


def _pattern_events(length=200):
    return [TraceEvent(i * 7 % 97, i % 11, i % 5 - 1, bool(i % 3))
            for i in range(length)]


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    """One on-disk store for the whole module: each workload's quick
    trace is generated once and shared by every equivalence pin."""
    return TraceStore(tmp_path_factory.mktemp("columnar-traces"))


class TestSequenceContract:
    def test_indexing_materializes_events_lazily(self):
        events = _pattern_events()
        trace = Trace.from_events(events)
        assert isinstance(trace[0], TraceEvent)
        assert trace[5] == events[5]
        assert trace[-1] == events[-1]
        with pytest.raises(IndexError):
            trace[len(events)]

    def test_iteration_and_equality(self):
        events = _pattern_events()
        trace = Trace.from_events(events)
        assert list(trace) == events
        assert trace == events
        assert not (trace == events[:-1])
        assert trace != events[:-1] + [TraceEvent(0, 0, 0)]

    def test_slicing_is_a_zero_copy_view(self):
        trace = Trace.from_events(_pattern_events())
        view = trace[40:160]
        assert isinstance(view, Trace)
        # Shares the parent's column arrays: no copying happened.
        assert view._addresses is trace._addresses
        assert list(view) == list(trace)[40:160]
        nested = view[10:20]
        assert nested._addresses is trace._addresses
        assert list(nested) == list(trace)[50:60]
        # Extended slicing has no zero-copy representation; it
        # materializes a list like any other fancy indexing.
        assert trace[::13] == [e for i, e in enumerate(trace) if not i % 13]

    def test_dispatched_views(self):
        events = _pattern_events()
        trace = Trace.from_events(events)
        expected = [i for i, e in enumerate(events) if e.dispatched]
        assert list(trace.dispatched_indices()) == expected
        assert trace.dispatched_count() == len(expected)
        assert trace.dispatched_count(37) == \
            sum(1 for e in events[:37] if e.dispatched)
        view = trace[33:154]
        assert list(view.dispatched_indices()) == \
            [i for i, e in enumerate(events[33:154]) if e.dispatched]
        assert view.dispatched_flag(0) == events[33].dispatched

    def test_builder_quacks_like_a_sequence(self):
        builder = TraceBuilder()
        events = _pattern_events(50)
        for event in events[:25]:
            builder.record(event.address, event.opcode,
                           event.receiver_class, event.dispatched)
        for event in events[25:]:
            builder.append(event)   # legacy emitter compatibility
        assert len(builder) == 50
        assert list(builder) == events
        assert builder == events
        assert builder.snapshot() == events

    def test_builder_extend_rebases_columns(self):
        events = _pattern_events(30)
        part = Trace.from_events(events)
        builder = TraceBuilder()
        builder.extend(part, address_offset=1000)
        builder.extend(part[5:12])
        expected = [TraceEvent(e.address + 1000, e.opcode,
                               e.receiver_class, e.dispatched)
                    for e in events] + events[5:12]
        assert builder == expected

    def test_aligned_view_payload_masks_trailing_bits(self):
        # A byte-aligned view whose stop is mid-byte must not leak
        # the dispatched bits of events past its end into the
        # payload: equality and serialization depend only on the
        # view's own events.
        events = [TraceEvent(i, 1, 1, dispatched=(i >= 5))
                  for i in range(8)]
        full = Trace.from_events(events)
        view = full[:5]
        clean = Trace.from_events(events[:5])
        assert view.to_bytes() == clean.to_bytes()
        assert view == clean and clean == view
        assert Trace.from_bytes(view.to_bytes()) == events[:5]

    def test_snapshot_payload_ignores_later_records(self):
        builder = TraceBuilder()
        for i in range(5):
            builder.record(i, 1, 1, False)
        snap = builder.snapshot()
        before = snap.to_bytes()
        builder.record(99, 9, 9, True)   # same trailing byte, set bit
        assert snap.to_bytes() == before
        assert snap == [TraceEvent(i, 1, 1, False) for i in range(5)]

    def test_pickle_round_trips_through_columns(self):
        trace = Trace.from_events(_pattern_events())
        clone = pickle.loads(pickle.dumps(trace))
        assert isinstance(clone, Trace)
        assert clone == trace
        view = trace[17:99]
        assert pickle.loads(pickle.dumps(view)) == view

    def test_stats_summary(self):
        events = _pattern_events()
        stats = Trace.from_events(events).stats()
        assert stats["events"] == len(events)
        assert stats["dispatched"] == sum(e.dispatched for e in events)
        assert stats["unique_opcodes"] == len({e.opcode for e in events})
        assert stats["unique_classes"] == \
            len({e.receiver_class for e in events})
        assert stats["unique_itlb_keys"] == \
            len({e.itlb_key for e in events if e.dispatched})
        assert stats["unique_addresses"] == \
            len({e.address for e in events})
        assert stats["address_min"] == min(e.address for e in events)
        assert stats["address_max"] == max(e.address for e in events)


class TestWarmupCutOwnership:
    """split_warmup routes through the semantics module (PR-4's single
    audited home of the cut), and the default stays bit-for-bit
    paper."""

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.25, 0.33, 0.999])
    def test_default_cut_is_paper_bit_for_bit(self, fraction):
        events = _pattern_events(173)
        warm, measure = split_warmup(events, fraction)
        cut = int(len(events) * fraction)   # the historical arithmetic
        assert warm == events[:cut] and measure == events[cut:]
        assert warmup_cut("paper", len(events), fraction) == cut

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_semantics_kwarg_accepted(self, semantics):
        events = _pattern_events(80)
        warm, measure = split_warmup(events, 0.25, semantics=semantics)
        assert len(warm) + len(measure) == len(events)

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError, match="unknown measurement"):
            split_warmup(_pattern_events(8), 0.25, semantics="v9")

    def test_columnar_split_returns_views(self):
        trace = Trace.from_events(_pattern_events())
        warm, measure = split_warmup(trace, 0.25)
        assert isinstance(warm, Trace) and isinstance(measure, Trace)
        assert warm._addresses is trace._addresses
        assert len(warm) == int(len(trace) * 0.25)
        assert list(warm) + list(measure) == list(trace)


def _workload_cases():
    return sorted(names())


class TestColumnarObjectEquivalence:
    """The tentpole pin: for every registered workload the columnar
    view is indistinguishable from the dataclass path."""

    @pytest.mark.parametrize("workload", _workload_cases())
    def test_events_identical(self, workload, shared_store):
        trace = shared_store.load(workload, quick=True)
        assert isinstance(trace, Trace)
        objects = list(trace)   # the fully materialized legacy form
        assert all(isinstance(e, TraceEvent) for e in objects[:3])
        assert trace == objects
        assert as_trace(objects) == trace

    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("workload", _workload_cases())
    def test_cache_simulation_identical(self, workload, semantics,
                                        shared_store):
        trace = shared_store.load(workload, quick=True)
        objects = list(trace)
        for kwargs in ({"warmup_fraction": 0.25},
                       {"double_pass": True}):
            columnar = simulate_itlb(trace, 64, 2, semantics=semantics,
                                     **kwargs)
            materialized = simulate_itlb(objects, 64, 2,
                                         semantics=semantics, **kwargs)
            assert columnar == materialized
            columnar = simulate_icache(trace, 256, 2,
                                       semantics=semantics, **kwargs)
            materialized = simulate_icache(objects, 256, 2,
                                           semantics=semantics, **kwargs)
            assert columnar == materialized

    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("workload", _workload_cases())
    def test_sweep_surfaces_identical(self, workload, semantics,
                                      shared_store):
        from repro.sweep import SweepSpec, run_sweep
        trace = shared_store.load(workload, quick=True)
        objects = list(trace)
        for cache, sizes in (("itlb", (16, 64)), ("icache", (64, 256))):
            spec = SweepSpec(cache=cache, sizes=sizes,
                             associativities=(1, 2),
                             warmup_fraction=0.25,
                             include_full=True, include_opt=True,
                             semantics=semantics)
            columnar = run_sweep(spec, trace)
            materialized = run_sweep(spec, objects)
            assert columnar.counts == materialized.counts
            assert columnar.opt_counts == materialized.opt_counts


class TestStoreRoundTrips:
    def test_empty_trace_round_trips(self):
        empty = TraceBuilder().snapshot()
        blob = TraceStore.serialize(empty)
        back = TraceStore.deserialize(blob)
        assert len(back) == 0
        assert back == empty
        assert back == []
        assert list(back.dispatched_indices()) == []

    def test_million_event_trace_round_trips(self):
        n = 1_000_001
        addresses = array(_INT, (i * 31 % 1_000_003 for i in range(n)))
        opcodes = array(_INT, (i % 211 for i in range(n)))
        classes = array(_INT, (i % 29 - 1 for i in range(n)))
        bits = bytearray(b"\xb6" * ((n + 7) >> 3))
        trace = Trace(addresses, opcodes, classes, bits)
        assert len(trace) > 1_000_000
        blob = TraceStore.serialize(trace)
        back = TraceStore.deserialize(blob)
        assert back == trace
        # Spot-check materialization at both ends and the middle.
        for i in (0, 1, n // 2, n - 2, n - 1):
            assert back[i] == trace[i]
        assert back.dispatched_count() == trace.dispatched_count()

    def test_load_constructs_zero_trace_events(self, tmp_path,
                                               monkeypatch):
        # Materialize once (generation may build whatever it likes)...
        warm = TraceStore(tmp_path)
        warm.load("monomorphic", quick=True)
        # ...then count every TraceEvent constructed during a cold
        # load from disk.  The columnar payload maps straight onto
        # the arrays, so the count must be exactly zero.
        constructed = []
        real = events_module.TraceEvent

        class CountingEvent(real):
            def __new__(cls, *args, **kwargs):
                constructed.append(1)
                return super().__new__(cls)

        monkeypatch.setattr(events_module, "TraceEvent", CountingEvent)
        store = TraceStore(tmp_path)
        trace = store.load("monomorphic", quick=True)
        assert store.hits == 1 and store.generated == 0
        assert len(trace) == 5000
        assert trace.dispatched_count() == 5000
        assert trace.stats()["unique_addresses"] == 64
        assert constructed == []
        # Sanity: materializing one event does go through the class.
        event = trace[0]
        assert constructed and isinstance(event, real)

    def test_v1_payload_is_a_miss_not_a_misread(self, tmp_path):
        counter = {"runs": 0}

        def build(length=16):
            counter["runs"] += 1
            return [TraceEvent(i, 1, 1) for i in range(length)]

        from repro.workloads.spec import WorkloadSpec
        spec = WorkloadSpec(name="v1-relic", description="test-only",
                            build=build, defaults={"length": 16})
        store = TraceStore(tmp_path)
        path = store.path_for(spec, spec.resolve())
        store.load(spec)
        assert counter["runs"] == 1
        # Overwrite with a v1-era array-of-structs payload (format
        # byte 1): the store must treat it as a miss and regenerate,
        # never decode it with the columnar layout.
        v1 = b"RTRC\x01" + (16).to_bytes(4, "little") + b"\x00" * 256
        path.write_bytes(v1)
        fresh = TraceStore(tmp_path)
        events = fresh.load(spec)
        assert counter["runs"] == 2
        assert len(events) == 16


class TestEmittersAreColumnar:
    def test_fith_machine_records_into_a_builder(self):
        from repro.fith.interp import FithMachine
        machine = FithMachine(trace=True)
        machine.run_source("1 2 + drop")
        assert isinstance(machine.trace, TraceBuilder)
        assert len(machine.trace) == machine.steps
        assert machine.trace[2].dispatched is True   # the send of +

    def test_com_machine_records_into_a_builder(self):
        from repro.core.machine import COMMachine
        machine = COMMachine()
        trace = machine.enable_trace()
        assert isinstance(trace, TraceBuilder)
        assert machine.trace is trace

    def test_registered_generators_return_traces(self, shared_store):
        trace = shared_store.load("interleaved", quick=True)
        assert isinstance(trace, Trace)
