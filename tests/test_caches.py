"""Tests for the cache substrate (repro.caches)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.icache import InstructionCache
from repro.caches.itlb import ITLB, ITLBEntry
from repro.caches.setassoc import MISS, SetAssociativeCache
from repro.caches.stats import AccessProfile, CacheStats
from repro.errors import DoesNotUnderstandTrap
from repro.objects.model import ClassRegistry, DefinedMethod, PrimitiveMethod


class TestCacheStats:
    def test_empty_ratios(self):
        stats = CacheStats()
        assert stats.hit_ratio == 0.0
        assert stats.miss_ratio == 0.0

    def test_ratios(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.hit_ratio == 0.75
        assert stats.miss_ratio == 0.25

    def test_reset(self):
        stats = CacheStats(hits=3, misses=1, fills=2)
        stats.reset()
        assert stats.accesses == 0 and stats.fills == 0

    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=1)
        snap = stats.snapshot()
        stats.hits = 10
        assert snap.hits == 1

    def test_merge(self):
        a = CacheStats(hits=1, misses=2)
        a.merge(CacheStats(hits=3, misses=4, evictions=5))
        assert (a.hits, a.misses, a.evictions) == (4, 6, 5)


class TestAccessProfile:
    def test_context_fraction(self):
        profile = AccessProfile(context_reads=9, heap_reads=1)
        assert profile.context_fraction == 0.9

    def test_empty(self):
        assert AccessProfile().context_fraction == 0.0

    def test_categories(self):
        profile = AccessProfile()
        profile.count("x")
        profile.count("x", 2)
        assert profile.categories["x"] == 3


class TestSetAssociativeBasics:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(8, 2)
        assert cache.lookup("a") is None
        cache.fill("a", 1)
        assert cache.lookup("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_reference_interface(self):
        cache = SetAssociativeCache(8, 2)
        assert cache.reference("k") is False
        assert cache.reference("k") is True

    def test_probe_distinguishes_stored_none(self):
        cache = SetAssociativeCache(8, 2)
        cache.fill("a", None)
        assert cache.probe("a") is None
        assert cache.probe("b") is MISS

    def test_update_does_not_evict(self):
        cache = SetAssociativeCache(4, "full")
        cache.fill("a", 1)
        cache.fill("a", 2)
        assert cache.lookup("a") == 2
        assert cache.stats.evictions == 0

    def test_access_loader_called_once(self):
        cache = SetAssociativeCache(8, 2)
        calls = []
        loader = lambda key: calls.append(key) or len(calls)
        assert cache.access("x", loader) == 1
        assert cache.access("x", loader) == 1
        assert calls == ["x"]

    def test_invalidate(self):
        cache = SetAssociativeCache(8, 2)
        cache.fill("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.lookup("a") is None

    def test_invalidate_where(self):
        cache = SetAssociativeCache(16, "full")
        for i in range(10):
            cache.fill(i, i * 10)
        removed = cache.invalidate_where(lambda k, v: k % 2 == 0)
        assert removed == 5
        assert len(cache) == 5

    def test_flush(self):
        cache = SetAssociativeCache(8, 2)
        cache.fill("a", 1)
        cache.flush()
        assert len(cache) == 0

    def test_bad_configuration(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1)
        with pytest.raises(ValueError):
            SetAssociativeCache(8, 3)   # not a divisor
        with pytest.raises(ValueError):
            SetAssociativeCache(8, 2, policy="magic")
        with pytest.raises(ValueError):
            SetAssociativeCache(8, 2, index="weird")


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(2, "full", policy="lru")
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.lookup("a")            # refresh a
        evicted = cache.fill("c", 3)
        assert evicted[0] == "b"

    def test_fifo_ignores_lookups(self):
        cache = SetAssociativeCache(2, "full", policy="fifo")
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.lookup("a")            # does not refresh under FIFO
        evicted = cache.fill("c", 3)
        assert evicted[0] == "a"

    def test_random_is_deterministic_per_seed(self):
        def evictions(seed):
            cache = SetAssociativeCache(4, "full", policy="random",
                                        seed=seed)
            order = []
            for i in range(16):
                evicted = cache.fill(i, i)
                if evicted:
                    order.append(evicted[0])
            return order
        assert evictions(1) == evictions(1)

    def test_modulo_indexing_conflicts(self):
        # Keys congruent mod num_sets conflict in a direct-mapped cache.
        cache = SetAssociativeCache(4, 1, index="modulo")
        cache.fill(0, "x")
        cache.fill(4, "y")           # same set as 0
        assert cache.lookup(0) is None
        assert cache.lookup(4) == "y"


class TestCapacityInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=300),
           st.sampled_from([(8, 1), (8, 2), (8, "full"), (16, 4)]))
    def test_never_exceeds_capacity(self, keys, config):
        size, assoc = config
        cache = SetAssociativeCache(size, assoc)
        for key in keys:
            cache.reference(key)
        assert len(cache) <= size
        occupancy = cache.set_occupancy()
        limit = size if assoc == "full" else assoc
        assert all(count <= limit for count in occupancy)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_resident_keys_were_inserted(self, keys):
        cache = SetAssociativeCache(8, 2)
        for key in keys:
            cache.reference(key)
        for key, _value in cache.items():
            assert key in keys

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_small_working_set_always_fits(self, keys):
        # 6 possible keys in an 8-entry fully associative cache: after
        # the first touch every access hits.
        cache = SetAssociativeCache(8, "full")
        misses = sum(0 if cache.reference(k) else 1 for k in keys)
        assert misses == len(set(keys))


class TestITLB:
    def _registry(self):
        registry = ClassRegistry()
        cls = registry.by_name("SmallInteger")
        cls.define_primitive("+", "arith.add")
        return registry, cls

    def test_translate_miss_then_hit(self):
        registry, cls = self._registry()
        itlb = ITLB(8, 2)
        calls = []

        def miss():
            calls.append(1)
            return registry.lookup("+", cls)

        first = itlb.translate(5, (cls.class_tag,), miss)
        assert first.hit is False
        assert first.entry.primitive is True
        assert first.entry.unit == "arith.add"
        second = itlb.translate(5, (cls.class_tag,), miss)
        assert second.hit is True
        assert len(calls) == 1

    def test_lookup_failure_not_cached(self):
        registry, cls = self._registry()
        itlb = ITLB(8, 2)

        def miss():
            return registry.lookup("nope", cls)

        for _ in range(2):
            with pytest.raises(DoesNotUnderstandTrap):
                itlb.translate(9, (cls.class_tag,), miss)
        assert len(itlb) == 0

    def test_entry_from_defined_method(self):
        method = DefinedMethod("foo", code=object(), argument_count=1)
        entry = ITLBEntry.from_method(method)
        assert entry.primitive is False
        assert entry.unit is None

    def test_invalidate_selector(self):
        itlb = ITLB(16, 2)
        itlb.reference(5, (1,))
        itlb.reference(5, (2,))
        itlb.reference(6, (1,))
        assert itlb.invalidate_selector(5) == 2
        assert len(itlb) == 1

    def test_invalidate_class(self):
        itlb = ITLB(16, 2)
        itlb.reference(5, (1,))
        itlb.reference(6, (1, 2))
        itlb.reference(7, (3,))
        assert itlb.invalidate_class(1) == 2

    def test_reset_stats_keeps_contents(self):
        itlb = ITLB(8, 2)
        itlb.reference(1, (1,))
        itlb.reset_stats()
        assert itlb.stats.accesses == 0
        assert itlb.reference(1, (1,)) is True


class TestInstructionCache:
    def test_reference(self):
        icache = InstructionCache(8, 2)
        assert icache.reference(0) is False
        assert icache.reference(0) is True

    def test_line_grouping(self):
        icache = InstructionCache(8, 2, line_words=4)
        icache.reference(0)
        assert icache.reference(3) is True    # same line
        assert icache.reference(4) is False   # next line

    def test_bad_line_words(self):
        with pytest.raises(ValueError):
            InstructionCache(8, 2, line_words=3)
        with pytest.raises(ValueError):
            InstructionCache(10, 2, line_words=4)

    def test_size_in_words(self):
        assert InstructionCache(64, 2, line_words=4).size == 64

    def test_direct_mapped_conflicts(self):
        # Addresses one cache-size apart thrash a direct-mapped cache
        # but coexist in a 2-way one.
        direct = InstructionCache(8, 1)
        twoway = InstructionCache(8, 2)
        for _ in range(4):
            for address in (0, 8):
                direct.reference(address)
                twoway.reference(address)
        assert direct.stats.hit_ratio < twoway.stats.hit_ratio
