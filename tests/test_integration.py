"""Cross-module integration tests: whole-system behaviours."""

import pytest

from repro.core.assembler import load_program
from repro.core.machine import COMMachine
from repro.core.pipeline import CycleParams
from repro.memory.physical import DeviceSpec, MemoryHierarchy
from repro.memory.tags import Tag, Word
from repro.smalltalk import compile_program
from repro.smalltalk.stackgen import run_stack_program
from repro.trace.cachesim import simulate_itlb
from repro.trace.workloads import interleaved_trace


class TestSmalltalkOnFullMachine:
    """A sizeable Smalltalk application on the complete simulator."""

    SOURCE = """
    class Shape extends Object
    class Circle extends Shape fields: radius
    class Rectangle extends Shape fields: width height

    Circle >> setRadius: r
        radius := r. ^self
    Circle >> area
        ^radius * radius * 3
    Rectangle >> setW: w h: h
        width := w. height := h. ^self
    Rectangle >> area
        ^width * height

    SmallInteger >> triangular
        | acc |
        acc := 0.
        1 to: self do: [:k | acc := acc + k].
        ^acc

    main | shapes total i |
        shapes := Array new: 6.
        i := 0.
        [i < 6] whileTrue: [
            (i \\\\ 2) = 0
                ifTrue: [shapes at: i put: (Circle new setRadius: i + 1)]
                ifFalse: [shapes at: i put:
                    (Rectangle new setW: i h: i + 2)].
            i := i + 1
        ].
        total := 0.
        0 to: 5 do: [:k | total := total + (shapes at: k) area].
        ^total + 10 triangular
    """

    def _expected(self):
        total = 0
        for i in range(6):
            if i % 2 == 0:
                total += (i + 1) * (i + 1) * 3
            else:
                total += i * (i + 2)
        return total + 55

    def test_result(self):
        machine = COMMachine()
        main = compile_program(machine, self.SOURCE)
        result = machine.run_program(main, max_instructions=1_000_000)
        assert result.value == self._expected()

    def test_stack_backend_agrees(self):
        result, _vm = run_stack_program(self.SOURCE)
        assert result.value == self._expected()

    def test_caches_effective(self):
        machine = COMMachine()
        main = compile_program(machine, self.SOURCE)
        # Warm run first (the paper's warm-up methodology), then two
        # measured runs dominated by steady-state behaviour.
        for _ in range(3):
            machine.run_program(main, max_instructions=1_000_000)
        assert machine.itlb.stats.hit_ratio > 0.95
        assert machine.icache.stats.hit_ratio > 0.9

    def test_with_small_itlb_more_misses(self):
        big = COMMachine(itlb_size=512)
        small = COMMachine(itlb_size=8, itlb_associativity=1)
        for machine in (big, small):
            main = compile_program(machine, self.SOURCE)
            machine.run_program(main, max_instructions=1_000_000)
        assert small.itlb.stats.miss_ratio >= big.itlb.stats.miss_ratio

    def test_memory_hierarchy_attached(self):
        hierarchy = MemoryHierarchy(
            [DeviceSpec("cache", 64, block_words=8, associativity=2,
                        latency_cycles=1)],
            backing_latency=50)
        machine = COMMachine(hierarchy=hierarchy)
        main = compile_program(machine, self.SOURCE)
        machine.run_program(main, max_instructions=1_000_000)
        assert hierarchy.devices[0].stats.accesses > 0


class TestGCIntegration:
    def test_collect_dead_objects_after_run(self):
        machine = COMMachine()
        main = compile_program(machine, """
        class Blob extends Object fields: a b c d
        main | p i |
            i := 0.
            [i < 20] whileTrue: [p := Blob new. i := i + 1].
            ^i
        """)
        machine.run_program(main, max_instructions=200_000)
        blob_tag = machine.registry.by_name("Blob").class_tag
        live_blobs = sum(
            1 for packed in machine.heap.live_objects()
            if machine.heap.class_tag_of(machine.mmu.fmt.from_packed(packed))
            == blob_tag)
        assert live_blobs == 20
        # No roots pin the blobs: all are garbage.  Protect machine
        # infrastructure (contexts, methods, constants) via roots.
        machine.context_cache.flush_all()
        roots = [p.virtual.packed for p in (machine.regs.cp, machine.regs.ncp)
                 if p.is_set]
        roots += [packed for packed in machine.heap.live_objects()
                  if machine.heap.kind_of(
                      machine.mmu.fmt.from_packed(packed)) != "object"]
        freed = machine.collector.collect(roots=roots)
        # 19 blobs are garbage; the 20th is still reachable through the
        # temporary `p` in main's (rooted) context.
        assert freed == 19
        live_after = sum(
            1 for packed in machine.heap.live_objects()
            if machine.heap.class_tag_of(machine.mmu.fmt.from_packed(packed))
            == blob_tag)
        assert live_after == 1


class TestDeepRecursionCopyBack:
    def test_depth_beyond_cache_is_correct(self):
        machine = COMMachine()
        main = compile_program(machine, """
        SmallInteger >> sumDown
            self < 1 ifTrue: [^0].
            ^(self - 1) sumDown + self
        main
            ^150 sumDown
        """)
        result = machine.run_program(main, max_instructions=1_000_000)
        assert result.value == 150 * 151 // 2
        assert machine.context_cache.stats.copybacks > 0
        assert machine.cycles.stalls.get("context_fault", 0) > 0

    def test_custom_cycle_params_scale_costs(self):
        cheap = COMMachine(cycle_params=CycleParams(context_fault=0))
        costly = COMMachine(cycle_params=CycleParams(context_fault=64))
        source = """
        SmallInteger >> sumDown
            self < 1 ifTrue: [^0].
            ^(self - 1) sumDown + self
        main
            ^100 sumDown
        """
        for machine in (cheap, costly):
            main = compile_program(machine, source)
            machine.run_program(main, max_instructions=1_000_000)
        assert costly.cycles.cycles > cheap.cycles.cycles


class TestComTraceFeedsCacheSim:
    def test_machine_trace_drives_itlb_model(self):
        machine = COMMachine()
        trace = machine.enable_trace()
        main = compile_program(machine, """
        SmallInteger >> fib
            self < 2 ifTrue: [^self].
            ^(self - 1) fib + (self - 2) fib
        main
            ^13 fib
        """)
        machine.run_program(main, max_instructions=1_000_000)
        assert len(trace) > 1000
        stats = simulate_itlb(trace, 64, 2, warmup_fraction=0.1)
        assert stats.hit_ratio > 0.95


class TestInterleavedWorkload:
    def test_interleaving_stresses_caches_more(self):
        events = interleaved_trace(scale=1, chunk=500)
        assert len(events) > 20_000
        small = simulate_itlb(events, 32, 2)
        large = simulate_itlb(events, 1024, 2)
        assert small.hit_ratio <= large.hit_ratio


class TestAssemblyAndSmalltalkInterop:
    def test_assembly_method_called_from_smalltalk(self):
        machine = COMMachine()
        main = compile_program(machine, """
        main
            ^5 assemblyDouble: 0
        """)
        from repro.core.assembler import Assembler
        assembler = Assembler(machine.opcodes, machine.constants)
        machine.install_method(
            machine.registry.by_name("SmallInteger"), "assemblyDouble:",
            assembler.assemble_lines(["c3 = c1 + c1", "ret c3"]),
            argument_count=1)
        assert machine.run_program(main).value == 10

    def test_smalltalk_method_called_from_assembly(self):
        machine = COMMachine()
        compile_program(machine, """
        SmallInteger >> smalltalkSquare
            ^self * self
        main
            ^0
        """)
        main = load_program(machine, """
        main
            c2 = 7 smalltalkSquare 0
            c0 = c2
            halt
        """)
        assert machine.run_program(main).value == 49
