"""Telemetry threaded through the harness pipeline.

Pins the observability acceptance criteria: armed runs produce a
merged, reconcilable sink; disabled runs produce *zero* files and
identical results; chaos (worker crashes, retries, resume) neither
breaks telemetry nor is misrepresented by it.
"""

import io
import json

import pytest

from repro import faults, telemetry
from repro.experiments.harness import run_all
from repro.telemetry import report as telemetry_report

#: Cheap experiments (no trace workloads), in registry order.
LIGHT = ["TAB-CCACHE", "TAB-ADDR"]


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.setattr(telemetry, "_RECORDER", None)
    monkeypatch.setattr(telemetry, "_SOURCE", None)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    yield
    telemetry.install(None)
    faults.install(None)


def _claims(results):
    return [(r.experiment, c.claim, c.holds)
            for r in results for c in r.claims]


def _telemetry_run_dirs(run_root):
    return [child for child in run_root.iterdir()
            if (child / "telemetry").is_dir()]


def _load(run_root):
    (run_dir,) = _telemetry_run_dirs(run_root)
    return telemetry_report.load_run(run_dir)


class TestArmedRun:
    def test_run_produces_merged_sink_and_identical_claims(
            self, tmp_path):
        baseline = run_all(stream=io.StringIO(), only=LIGHT,
                           trace_dir=str(tmp_path / "t"),
                           run_dir=str(tmp_path / "r"))
        traced = run_all(stream=io.StringIO(), only=LIGHT,
                         trace_dir=str(tmp_path / "t"),
                         run_dir=str(tmp_path / "r2"),
                         with_telemetry=True)
        assert _claims(traced) == _claims(baseline)

        (run_dir,) = _telemetry_run_dirs(tmp_path / "r2")
        tdir = run_dir / "telemetry"
        assert (tdir / telemetry.SPANS_FILE).exists()
        assert (tdir / telemetry.METRICS_FILE).exists()
        assert (tdir / telemetry.ENVIRONMENT_FILE).exists()
        # finalize() ran: every shard merged and removed.
        assert not list(tdir.glob("spans-*.jsonl"))
        assert not list(tdir.glob("metrics-*.json"))
        # ... and the run disarmed telemetry behind itself.
        assert not telemetry.enabled()

        data = telemetry_report.load_run(run_dir)
        report = telemetry_report.build_report(data)
        assert report["task_spans"] == len(LIGHT)
        assert report["task_counter"] == len(LIGHT)
        counters = data["metrics"]["counters"]
        assert counters["harness.experiments"] == len(LIGHT)
        assert counters["journal.records"] == len(LIGHT)
        assert counters["harness.claims_held"] \
            == counters["harness.claims_total"] == len(_claims(traced))
        names = {span["name"] for span in data["spans"]}
        assert {"harness.run", "harness.task",
                "journal.record"} <= names
        environment = data["environment"]
        assert "numpy" in environment

    def test_summary_notes_numpy_and_telemetry_dir(self, tmp_path):
        stream = io.StringIO()
        run_all(stream=stream, only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"), with_telemetry=True)
        output = stream.getvalue()
        assert "numpy" in output.rsplit("robustness:", 1)[1]
        assert "telemetry:" in output

    def test_sweep_seams_recorded_for_trace_experiments(self, tmp_path):
        run_all(stream=io.StringIO(), only=["FIG-10"], quick=True,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"), with_telemetry=True)
        data = _load(tmp_path / "r")
        counters = data["metrics"]["counters"]
        assert telemetry_report.counter_total(
            data["metrics"], "sweep.refs_replayed") > 0
        assert telemetry_report.counter_total(
            data["metrics"], "store.generated") == 1
        names = {span["name"] for span in data["spans"]}
        assert {"harness.materialize", "store.load", "store.write",
                "sweep.run"} <= names
        assert any(key.startswith("sweep.replay_events_per_sec")
                   for key in data["metrics"]["histograms"])
        assert counters["harness.tasks"] == 1


class TestDisabledRun:
    def test_no_telemetry_flag_writes_zero_telemetry_files(
            self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"))
        assert _telemetry_run_dirs(tmp_path / "r") == []
        run_root = tmp_path / "r"
        stray = [path for path in run_root.rglob("*")
                 if "telemetry" in path.name
                 or path.name.startswith(("spans", "metrics-"))]
        assert stray == []
        assert not telemetry.enabled()

    def test_fresh_run_clears_a_stale_telemetry_sink(self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"), with_telemetry=True)
        # The same run identity again, telemetry off: the journal
        # clears its directory, stale spans must not survive.
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"))
        assert _telemetry_run_dirs(tmp_path / "r") == []


class TestChaos:
    def test_worker_crash_pool_rebuild_keeps_telemetry_consistent(
            self, tmp_path):
        baseline = run_all(stream=io.StringIO(), only=LIGHT,
                           trace_dir=str(tmp_path / "t"),
                           run_dir=str(tmp_path / "r"))
        chaotic = run_all(stream=io.StringIO(), only=LIGHT, jobs=2,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r2"),
                          retries=3, backoff=0.0,
                          fault_plan="worker.task:crash:times=1",
                          fault_seed=5, with_telemetry=True)
        assert _claims(chaotic) == _claims(baseline)
        data = _load(tmp_path / "r2")
        # The crash fault's fired log survived the os._exit (event
        # and counters are flushed *before* the fault acts) and the
        # counters agree with the event log.
        fired_events = [e for e in data["events"]
                        if e.get("name") == "fault.fired"]
        assert fired_events
        assert telemetry_report.counter_total(
            data["metrics"], "faults.fired") == len(fired_events)
        # Span ids stay unique across parent + workers + rebuilt
        # pools (the fork-aware recorder never reuses a shard).
        ids = [s["id"] for s in data["spans"]]
        assert len(ids) == len(set(ids))

    def test_injected_error_counters_match_the_fired_log(
            self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"),
                retries=3, backoff=0.0,
                fault_plan="worker.task:error:times=1",
                fault_seed=5, with_telemetry=True)
        data = _load(tmp_path / "r")
        metrics = data["metrics"]
        # times=1 is per task key: each experiment's task fails once.
        fired_events = [e for e in data["events"]
                        if e.get("name") == "fault.fired"]
        assert len(fired_events) == telemetry_report.counter_total(
            metrics, "faults.fired") == len(LIGHT)
        assert telemetry_report.counter_total(
            metrics, "harness.retries") == len(LIGHT)
        retry_events = [e for e in data["events"]
                        if e.get("name") == "harness.retry"]
        assert len(retry_events) == len(LIGHT)
        # Every experiment took one failed + one successful attempt.
        assert telemetry_report.counter_total(
            metrics, "harness.tasks") == 2 * len(LIGHT)
        report = telemetry_report.build_report(data)
        assert report["robustness"]["faults_fired"] == len(LIGHT)
        assert report["robustness"]["retries"] == len(LIGHT)

    def test_claims_identical_across_off_on_and_chaos(self, tmp_path):
        plain = run_all(stream=io.StringIO(), only=LIGHT,
                        trace_dir=str(tmp_path / "t"),
                        run_dir=str(tmp_path / "r1"))
        traced = run_all(stream=io.StringIO(), only=LIGHT,
                         trace_dir=str(tmp_path / "t"),
                         run_dir=str(tmp_path / "r2"),
                         with_telemetry=True)
        chaos = run_all(stream=io.StringIO(), only=LIGHT,
                        trace_dir=str(tmp_path / "t"),
                        run_dir=str(tmp_path / "r3"),
                        retries=3, backoff=0.0,
                        fault_plan="worker.task:error:times=1",
                        fault_seed=5, with_telemetry=True)
        assert _claims(plain) == _claims(traced) == _claims(chaos)
        assert all(r.all_hold for r in chaos)


class TestResume:
    def test_resume_merges_shards_without_double_counting(
            self, tmp_path):
        kwargs = dict(only=LIGHT, trace_dir=str(tmp_path / "t"),
                      run_dir=str(tmp_path / "r"),
                      with_telemetry=True)
        # First run: every task fails permanently (nothing journaled).
        failed = run_all(stream=io.StringIO(), retries=0, backoff=0.0,
                         fault_plan="worker.task:error:times=99",
                         fault_seed=5, **kwargs)
        assert all(not r.all_hold for r in failed)
        # Resume with no faults: both experiments rerun and succeed.
        resumed = run_all(stream=io.StringIO(), resume=True, **kwargs)
        assert all(r.all_hold for r in resumed)

        data = _load(tmp_path / "r")
        # 2 failed attempts + 2 successful reruns, once each: the
        # id-deduplicating merge must not double-count the first
        # run's already-merged spans.
        tasks = [s for s in data["spans"]
                 if s["name"] == "harness.task"]
        assert len(tasks) == 4
        ids = [s["id"] for s in data["spans"]]
        assert len(ids) == len(set(ids))
        assert telemetry_report.counter_total(
            data["metrics"], "harness.tasks") == 4
        statuses = sorted(s["status"] for s in tasks)
        assert statuses == ["error:InjectedTaskError",
                            "error:InjectedTaskError", "ok", "ok"]
        assert telemetry_report.counter_total(
            data["metrics"], "journal.records") == 2

    def test_resume_serving_from_journal_is_spanned(self, tmp_path):
        kwargs = dict(only=LIGHT, trace_dir=str(tmp_path / "t"),
                      run_dir=str(tmp_path / "r"),
                      with_telemetry=True)
        run_all(stream=io.StringIO(), **kwargs)
        stream = io.StringIO()
        run_all(stream=stream, resume=True, **kwargs)
        assert "2 experiment(s) served" in stream.getvalue()
        data = _load(tmp_path / "r")
        resume_spans = [s for s in data["spans"]
                        if s["name"] == "journal.resume"]
        assert len(resume_spans) == 1
        assert resume_spans[0]["attrs"]["served"] == 2
        assert telemetry_report.counter_total(
            data["metrics"], "harness.resumed") == 2
