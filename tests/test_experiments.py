"""Tests for the experiment harness: every paper claim must reproduce.

The trace-driven experiments (FIG-10/FIG-11) run on a reduced workload
here to keep the suite fast; the full-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    addr_compare,
    call_cost,
    context_cache,
    context_stats,
    fig10,
    fig11,
    stack_vs_3addr,
)
from repro.experiments.common import ClaimCheck, ExperimentResult
from repro.trace.workloads import paper_trace


@pytest.fixture(scope="module")
def events():
    """A shortened measurement trace that keeps the full code footprint.

    The call-site count (rounds) stays at the calibrated default so the
    figure-11 footprint claims still hold; only the per-phase repetition
    is reduced to keep the suite fast.
    """
    return paper_trace(rounds=450, phase_length=280)


@pytest.fixture(scope="module")
def fig10_result(events):
    return fig10.run(events=events, plot=False)


@pytest.fixture(scope="module")
def fig11_result(events):
    return fig11.run(events=events, plot=False)


class TestCommon:
    def test_claim_rows(self):
        result = ExperimentResult("X", "desc")
        result.check("a claim", "1", "1", True)
        result.check("another", "2", "3", False)
        assert not result.all_hold
        report = result.report()
        assert "REPRODUCED" in report and "DIVERGES" in report


class TestFig10(object):
    def test_all_claims_hold(self, fig10_result):
        assert fig10_result.all_hold, fig10_result.report()

    def test_512_2way_reaches_99(self, fig10_result):
        assert fig10_result.data["ratio_512_2w"] >= 0.99

    def test_monotone_in_size_at_2way(self, fig10_result):
        sweep = fig10_result.data["sweep"]
        ratios = [sweep.ratio(2, size) for size in sweep.sizes]
        # Allow tiny non-monotonic wiggles from set-conflict noise.
        for earlier, later in zip(ratios, ratios[1:]):
            assert later >= earlier - 0.02

    def test_trace_is_paper_scale(self, fig10_result):
        # "the longest of which was about 20,000 instructions" -- ours
        # must be at least that long.
        assert fig10_result.data["trace_length"] >= 20_000

    def test_table_has_all_rows(self, fig10_result):
        assert fig10_result.table.count("\n") >= 10


class TestFig11(object):
    def test_all_claims_hold(self, fig11_result):
        assert fig11_result.all_hold, fig11_result.report()

    def test_icache_needs_more_than_itlb(self, fig10_result, fig11_result):
        itlb_99 = fig10_result.data["sweep"].smallest_size_reaching(0.99, 2)
        icache_99 = fig11_result.data["sweep"].smallest_size_reaching(
            0.99, 2)
        assert itlb_99 is not None
        assert icache_99 is None or icache_99 > itlb_99


class TestCallCost:
    @pytest.fixture(scope="class")
    def result(self):
        return call_cost.run(calls=60)

    def test_all_claims_hold(self, result):
        assert result.all_hold, result.report()

    def test_exact_paper_numbers(self, result):
        assert result.data["zero_call_total"] == pytest.approx(4.0, abs=0.5)
        assert result.data["return_total"] == pytest.approx(2.0, abs=0.01)
        assert result.data["per_operand"] == pytest.approx(1.0, abs=0.01)
        assert result.data["base_cpi"] == pytest.approx(2.0, abs=0.1)


class TestContextStats:
    @pytest.fixture(scope="class")
    def result(self):
        return context_stats.run()

    def test_all_claims_hold(self, result):
        assert result.all_hold, result.report()

    def test_regime_matches_paper(self, result):
        assert 0.75 <= result.data["context_alloc_fraction"] <= 1.0
        assert result.data["context_ref_fraction"] >= 0.9
        assert 0.75 <= result.data["lifo_fraction"] < 1.0
        assert result.data["frames_fitting"] >= 0.9


class TestContextCache:
    @pytest.fixture(scope="class")
    def result(self):
        return context_cache.run(shallow_depth=20, deep_depth=120)

    def test_all_claims_hold(self, result):
        assert result.all_hold, result.report()

    def test_shallow_never_faults(self, result):
        assert result.data["shallow"]["faults"] == 0

    def test_deep_engages_copyback(self, result):
        assert result.data["deep"]["copybacks"] > 0


class TestAddrCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return addr_compare.run()

    def test_all_claims_hold(self, result):
        assert result.all_hold, result.report()

    def test_worked_example_in_table(self, result):
        assert "262,144" in result.table


class TestStackVs3Addr:
    @pytest.fixture(scope="class")
    def result(self):
        return stack_vs_3addr.run()

    def test_all_claims_hold(self, result):
        assert result.all_hold, result.report()

    def test_ratio_near_two(self, result):
        assert 1.4 <= result.data["mean_ratio"] <= 2.6

    def test_every_program_above_one(self, result):
        assert all(ratio > 1.0 for ratio in result.data["ratios"].values())

    def test_stack_code_is_smaller(self, result):
        # The stack machine's stated advantage: small code size (bytes).
        assert result.data["mean_static_ratio"] < 1.0
