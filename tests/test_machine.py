"""Tests for the COM functional simulator (repro.core.machine)."""

import pytest

from repro.core.assembler import load_program
from repro.core.machine import COMMachine
from repro.errors import (
    DoesNotUnderstandTrap,
    MachineHalted,
    ProtectionTrap,
    SimulationLimitExceeded,
)
from repro.memory.physical import default_hierarchy
from repro.memory.tags import Tag, Word


def run(source: str, machine: COMMachine = None, budget: int = 100_000):
    machine = machine or COMMachine()
    main = load_program(machine, source)
    result = machine.run_program(main, max_instructions=budget)
    return result, machine


class TestArithmeticPrograms:
    def test_integer_arithmetic(self):
        result, _ = run("""
        main
            c2 = 10
            c3 = 3
            c4 = c2 + c3
            c5 = c4 * c3
            c6 = c5 - c2
            c7 = c6 / c3
            c8 = c7 % 7
            c0 = c8
            halt
        """)
        # ((10+3)*3 - 10) / 3 = 9; 9 % 7 = 2
        assert result.value == 2

    def test_float_and_mixed(self):
        result, _ = run("""
        main
            c2 = 1.5
            c3 = c2 + c2
            c4 = c3 * 2
            c0 = c4
            halt
        """)
        assert result.tag is Tag.FLOAT
        assert result.value == 6.0

    def test_comparisons_and_constants(self):
        result, _ = run("""
        main
            c2 = 3 < 5
            c3 = c2 = true
            c0 = c3
            halt
        """)
        assert result.value == "true"

    def test_bit_operations(self):
        result, _ = run("""
        main
            c2 = 12 band 10
            c3 = c2 bor 1
            c4 = c3 bxor 15
            c0 = c4
            halt
        """)
        assert result.value == (12 & 10 | 1) ^ 15

    def test_negate_unary(self):
        result, _ = run("""
        main
            c2 = neg 42
            c0 = c2
            halt
        """)
        assert result.value == -42


class TestControlFlow:
    def test_forward_jump(self):
        result, _ = run("""
        main
            c2 = 1
            jt c2 skip
            c2 = 99
            skip:
            c0 = c2
            halt
        """)
        assert result.value == 1

    def test_not_taken(self):
        result, _ = run("""
        main
            c2 = 0
            jt c2 skip
            c2 = 99
            skip:
            c0 = c2
            halt
        """)
        assert result.value == 99

    def test_backward_jump_loop(self):
        result, _ = run("""
        main
            c2 = 0
            c3 = 10
            loop:
            c2 = c2 + 1
            c4 = c2 < c3
            jt c4 loop
            c0 = c2
            halt
        """)
        assert result.value == 10

    def test_taken_branch_costs_a_cycle(self):
        _, machine = run("""
        main
            c2 = 1
            jt c2 skip
            skip:
            c0 = c2
            halt
        """)
        assert machine.cycles.stalls.get("branch", 0) == 1


class TestMethodCalls:
    def test_three_operand_send(self):
        result, machine = run("""
        method SmallInteger >> plus args=2
            c3 = c1 + c2
            ret c3
        main
            c2 = 4 plus 5
            c0 = c2
            halt
        """)
        assert result.value == 9
        assert machine.cycles.calls == 1
        assert machine.cycles.returns == 1

    def test_zero_operand_send(self):
        result, _ = run("""
        method SmallInteger >> triple args=1
            c2 = c1 * 3
            ret c2
        main
            c5 = 0
            c6 = & c5
            n0 = c6
            n1 = 7
            send triple 1
            c0 = c5
            halt
        """)
        assert result.value == 21

    def test_recursion(self):
        result, machine = run("""
        method SmallInteger >> fact args=1
            c2 = c1 < 2
            jt c2 base
            c3 = c1 - 1
            c4 = c3 fact c3
            c5 = c1 * c4
            ret c5
            base:
            ret 1
        """ + "\nmain\n    c2 = 8 fact 8\n    c0 = c2\n    halt\n")
        assert result.value == 40320
        assert machine.max_depth == 9

    def test_dispatch_on_receiver_class(self):
        result, _ = run("""
        method SmallInteger >> describe args=1
            ret 1
        method Float >> describe args=1
            ret 2
        method Atom >> describe args=1
            ret 3
        main
            c2 = 5 describe 0
            c3 = 5.0 describe 0
            c4 = #foo describe 0
            c5 = c2 + c3
            c6 = c5 + c4
            c0 = c6
            halt
        """)
        assert result.value == 6.0

    def test_inheritance_dispatch(self):
        result, _ = run("""
        class Animal
        class Dog < Animal
        method Animal >> noise args=1
            ret 1
        method Dog >> noise args=1
            ret 2
        main
            c2 = #Dog new c2
            c3 = c2 noise c2
            c0 = c3
            halt
        """)
        assert result.value == 2

    def test_super_method_found_through_hierarchy(self):
        result, _ = run("""
        class Animal
        class Dog < Animal
        method Animal >> kind args=1
            ret 7
        main
            c2 = #Dog new c2
            c3 = c2 kind c2
            c0 = c3
            halt
        """)
        assert result.value == 7

    def test_dnu_trap(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 1 zorble 2
            halt
        """)
        machine.start(main)
        with pytest.raises(DoesNotUnderstandTrap):
            machine.run()

    def test_redefinition_invalidates_itlb(self):
        machine = COMMachine()
        main = load_program(machine, """
        method SmallInteger >> answer args=1
            ret 1
        main
            c2 = 5 answer 0
            c0 = c2
            halt
        """)
        assert machine.run_program(main).value == 1
        # Redefine; no caller code changes (smooth extensibility).
        from repro.core.assembler import Assembler
        assembler = Assembler(machine.opcodes, machine.constants)
        machine.install_method(
            machine.registry.by_name("SmallInteger"), "answer",
            assembler.assemble_lines(["ret 2"]), argument_count=1)
        assert machine.run_program(main).value == 2

    def test_redefinition_invalidates_decoded_plans(self):
        """install_method shoots down ITLB entries *and* decoded plans.

        The predecode layer caches per-method instruction plans; a
        redefined selector must drop the replaced method's plans just
        like its ITLB entries, and old callers -- whose object code
        never changes -- must execute the new method.
        """
        machine = COMMachine()
        main = load_program(machine, """
        method SmallInteger >> answer args=1
            ret 1
        main
            c2 = 5 answer 0
            c0 = c2
            halt
        """)
        assert machine.run_program(main).value == 1
        integer = machine.registry.by_name("SmallInteger")
        old_key = machine.method_for(
            integer, "answer").code_address.segment_name
        assert old_key in machine.decoded.by_segment
        itlb_invalidations = machine.itlb.stats.invalidations
        plan_invalidations = machine.decoded.invalidations
        from repro.core.assembler import Assembler
        assembler = Assembler(machine.opcodes, machine.constants)
        machine.install_method(
            integer, "answer",
            assembler.assemble_lines(["ret 2"]), argument_count=1)
        assert machine.itlb.stats.invalidations > itlb_invalidations
        assert machine.decoded.invalidations > plan_invalidations
        assert old_key not in machine.decoded.by_segment
        new_key = machine.method_for(
            integer, "answer").code_address.segment_name
        assert new_key in machine.decoded.by_segment
        assert machine.run_program(main).value == 2


class TestMemoryInstructions:
    def test_at_atput(self):
        result, _ = run("""
        main
            c2 = #Array new: 4
            c2 [ 0 ] = 10
            c2 [ 3 ] = 32
            c3 = c2 [ 0 ]
            c4 = c2 [ 3 ]
            c5 = c3 + c4
            c0 = c5
            halt
        """)
        assert result.value == 42

    def test_movea_and_store_through(self):
        result, _ = run("""
        main
            c2 = 5
            c3 = & c2
            c4 = #Array new: 1
            c4 [ 0 ] = c3
            c5 = c4 [ 0 ]
            c6 = c5 [ 0 ]
            c0 = c6
            halt
        """)
        # c6 reads through the pointer back into the context slot c2.
        assert result.value == 5

    def test_at_on_non_pointer_is_dnu(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 5
            c3 = c2 [ 0 ]
            halt
        """)
        machine.start(main)
        with pytest.raises(DoesNotUnderstandTrap):
            machine.run()

    def test_at_stalls_pipeline(self):
        _, machine = run("""
        main
            c2 = #Array new: 2
            c2 [ 0 ] = 1
            c3 = c2 [ 0 ]
            c0 = c3
            halt
        """)
        assert machine.cycles.stalls.get("at_memory", 0) == 2


class TestTagInstructions:
    def test_tag_instruction(self):
        result, _ = run("""
        main
            c2 = tag 5
            c3 = tag 5.0
            c4 = c2 + c3
            c0 = c4
            halt
        """)
        assert result.value == int(Tag.SMALL_INTEGER) + int(Tag.FLOAT)

    def test_as_requires_privilege(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 5 as 2
            halt
        """)
        machine.start(main)
        with pytest.raises(ProtectionTrap):
            machine.run()

    def test_as_with_privilege(self):
        machine = COMMachine()
        machine.regs.ps.privileged = True
        result, _ = run("""
        main
            c2 = 5 as 2
            c3 = tag c2
            c0 = c3
            halt
        """, machine=machine)
        assert result.value == int(Tag.FLOAT)


class TestAllocationPrimitives:
    def test_new_uses_declared_size(self):
        result, machine = run("""
        class Pair
        main
            c2 = #Pair new c2
            c0 = c2
            halt
        """)
        assert result.is_pointer
        assert machine.registry.by_name("Pair").class_tag == result.class_tag

    def test_new_unknown_class_is_dnu(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = #Nonexistent new c2
            halt
        """)
        machine.start(main)
        with pytest.raises(DoesNotUnderstandTrap):
            machine.run()


class TestXfer:
    def test_coroutine_yield_and_resume(self):
        result, machine = run("""
        method Object >> park args=1
            c3 = & c3
            c1 [ 0 ] = c3
            c4 = c3 [ -5 ]
            xfer c4
            c0 = 42
            ret 42
        main
            c2 = #Array new: 2
            c3 = c2 park c2
            c4 = c2 [ 0 ]
            xfer c4
            c0 = c3
            halt
        """)
        assert result.value == 42
        assert machine.recycler.stats.returned_non_lifo == 1


class TestMachineLifecycle:
    def test_step_after_halt_raises(self):
        machine = COMMachine()
        main = load_program(machine, "main\n    halt\n")
        machine.run_program(main)
        with pytest.raises(MachineHalted):
            machine.step()

    def test_result_before_start(self):
        with pytest.raises(MachineHalted):
            COMMachine().result()

    def test_instruction_budget(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 1
            loop:
            jt c2 loop
            halt
        """)
        machine.start(main)
        with pytest.raises(SimulationLimitExceeded):
            machine.run(max_instructions=100)

    def test_arguments_passed_to_main(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c3 = c1 + c2
            c0 = c3
            halt
        """)
        result = machine.run_program(
            main, arguments=[Word.small_integer(30),
                             Word.small_integer(12)])
        assert result.value == 42

    def test_rerun_same_program(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 21
            c3 = c2 + c2
            c0 = c3
            halt
        """)
        assert machine.run_program(main).value == 42
        assert machine.run_program(main).value == 42

    def test_top_level_return_halts(self):
        result, machine = run("""
        main
            ret 7
        """)
        assert machine.halted
        assert result.value == 7


class TestTraceRecording:
    def test_events_have_paper_fields(self):
        machine = COMMachine()
        trace = machine.enable_trace()
        run("""
        main
            c2 = 1
            c3 = c2 + c2
            c0 = c3
            halt
        """, machine=machine)
        assert len(trace) >= 3
        add_events = [e for e in trace
                      if machine.opcodes.selector_of(e.opcode) == "+"]
        assert add_events
        assert add_events[0].receiver_class == int(Tag.SMALL_INTEGER)

    def test_trace_addresses_distinct_per_instruction(self):
        machine = COMMachine()
        trace = machine.enable_trace()
        run("""
        main
            c2 = 1
            c3 = 2
            c4 = c2 + c3
            c0 = c4
            halt
        """, machine=machine)
        addresses = [e.address for e in trace]
        assert len(set(addresses)) == len(addresses)


class TestHierarchyIntegration:
    def test_machine_with_memory_hierarchy(self):
        machine = COMMachine(hierarchy=default_hierarchy())
        result, machine = run("""
        main
            c2 = #Array new: 8
            c2 [ 0 ] = 5
            c3 = c2 [ 0 ]
            c0 = c3
            halt
        """, machine=machine)
        assert result.value == 5
        assert machine.mmu.hierarchy.devices[0].stats.accesses > 0


class TestProfiling:
    def test_context_references_dominate(self):
        _, machine = run("""
        method SmallInteger >> fib args=1
            c2 = c1 < 2
            jt c2 base
            c3 = c1 - 1
            c4 = c3 fib c3
            c5 = c1 - 2
            c6 = c5 fib c5
            c7 = c4 + c6
            ret c7
            base:
            ret c1
        main
            c2 = 10 fib 10
            c0 = c2
            halt
        """)
        assert machine.profile.context_fraction > 0.9
        assert machine.recycler.stats.lifo_fraction == 1.0
