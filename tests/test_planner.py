"""The batched query planner PR's acceptance surface (repro.sweep.planner).

The load-bearing guarantee is *projection equivalence*: answers the
planner projects out of one superset replay are bitwise-identical --
counts, meta, iteration order -- to what an individual
``run_sweep`` of each query's own spec produces, for every paper-grid
query, under both measurement semantics and both engines (numpy
present and absent).  CI runs the equivalence tests by name
(``-k "equivalence and paper"`` / ``-k "equivalence and v2"``) as a
dedicated gate.

Around that pin: grouping/coalescing rules, the loud fallback paths,
wire-format query normalization, the byte-budgeted single-flight
:class:`SurfaceCache`, and the memory/disk cache interplay.
"""

import json
import random
import threading

import pytest

from repro import faults, telemetry
from repro.cli import main as cli_main
from repro.sweep import (
    HierarchySpec,
    PAPER_SIZES,
    Query,
    SurfaceCache,
    SweepSpec,
    paper_hierarchy,
    query_from_request,
    result_cache_key,
    run_batch,
    run_hierarchy,
    run_hierarchy_planned,
    run_sweep,
)
from repro.sweep import np_engine
from repro.sweep import planner
from repro.sweep.runner import _RESULT_CACHES
from repro.trace.events import TraceEvent
from repro.workloads.spec import WorkloadSpec
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_RESULT_CACHE_BYTES", raising=False)
    monkeypatch.delenv(planner.ENV_SURFACE_CACHE, raising=False)
    monkeypatch.delenv(planner.ENV_SURFACE_BUDGET, raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    monkeypatch.setattr(telemetry, "_RECORDER", None)
    monkeypatch.setattr(telemetry, "_SOURCE", None)
    monkeypatch.setattr(planner, "_DEFAULT_CACHE", None)
    _RESULT_CACHES.clear()
    yield
    faults.install(None)
    telemetry.install(None)
    _RESULT_CACHES.clear()


def _mixed_trace(n=3000, seed=11):
    """Phased locality + random stragglers + a non-dispatched mix."""
    rnd = random.Random(seed)
    events = []
    for i in range(n):
        if rnd.random() < 0.3:
            address = rnd.randrange(600)
        else:
            address = (i * 7) % 97 + (i // 500) * 64
        events.append(TraceEvent(address, rnd.randrange(60),
                                 rnd.randrange(5),
                                 dispatched=rnd.random() < 0.7))
    return events


@pytest.fixture(scope="module")
def events():
    return _mixed_trace()


def _store_trace(tmp_path, length=512):
    def build(length=length):
        return [TraceEvent((i * 37) % 251 - 17, 1 + i % 7, i % 5,
                           bool(i % 2)) for i in range(length)]
    spec = WorkloadSpec(name="synthetic", description="test-only",
                        build=build, defaults={"length": length})
    store = TraceStore(tmp_path)
    return store, store.load(spec)


def _assert_bitwise_equal(got, want):
    """The projected surface IS the individual run's, bit for bit."""
    assert got.counts == want.counts
    assert got.opt_counts == want.opt_counts
    assert got.meta == want.meta
    assert list(got.counts) == list(want.counts)       # iteration order
    for assoc in got.counts:
        assert list(got.counts[assoc]) == list(want.counts[assoc])


GRID = dict(sizes=PAPER_SIZES, associativities=(1, 2, 4, "full"))
SEMANTICS = ("paper", "v2")
ENGINE_MODES = ("pure", "auto-sans-numpy", "numpy")


def _paper_grid_queries(cache, engine, semantics):
    """A mixed batch over one cache kind: the full-grid sweep plus
    curve / isoratio / point queries on sub-grids of it."""
    common = dict(engine=engine, semantics=semantics, double_pass=True)
    full = SweepSpec(cache=cache, include_opt=True, **GRID, **common)
    curve_1 = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                        associativities=(1,), **common)
    curve_f = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                        associativities=("full",), **common)
    iso = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                    associativities=(2, 4), **common)
    point = SweepSpec(cache=cache, sizes=(64,), associativities=(2,),
                      **common)
    return [
        Query(spec=full),
        Query(spec=curve_1, kind="curve", associativity=1),
        Query(spec=curve_f, kind="curve", associativity="full"),
        Query(spec=iso, kind="isoratio", target=0.97),
        Query(spec=point, kind="stats", associativity=2, size=64),
        Query(spec=point, kind="ratio", associativity=2, size=64),
    ]


class TestProjectionEquivalence:
    """Satellite: batch-planned answers bitwise-equal to individual
    ``run_sweep`` runs, both semantics, both engines."""

    def _engine(self, mode, monkeypatch):
        if mode == "numpy":
            pytest.importorskip("numpy")
            return "numpy"
        if mode == "auto-sans-numpy":
            monkeypatch.setattr(np_engine, "numpy_available",
                                lambda: False)
            return "auto"
        return "single-pass"

    @pytest.mark.parametrize("engine_mode", ENGINE_MODES)
    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_mixed_batch_projection_equivalence(self, events, semantics,
                                                engine_mode,
                                                monkeypatch):
        engine = self._engine(engine_mode, monkeypatch)
        queries = []
        for cache in ("itlb", "icache"):
            queries.extend(_paper_grid_queries(cache, engine, semantics))
        batch = run_batch(queries, events,
                          surface_cache=SurfaceCache())
        assert batch.report.queries == len(queries)
        # One superset replay per cache kind -- every other query in
        # the group is projected, never re-run.
        assert batch.report.replays == 2
        assert batch.report.coalesced == len(queries)
        assert batch.report.fallbacks == 0
        for query, surface in zip(batch.queries, batch.surfaces):
            solo = run_sweep(query.spec, events)
            _assert_bitwise_equal(surface, solo)
            assert query.answer(surface) == query.answer(solo)

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_every_paper_grid_cell_equivalence(self, events, semantics):
        """Every (associativity, size) cell of the paper grid, asked
        as an individual stats query, batch-answered from <= 2 trace
        passes and bitwise-equal to the full-grid run."""
        full = SweepSpec(cache="itlb", semantics=semantics,
                         double_pass=True, **GRID)
        queries = [Query(spec=full, kind="stats", associativity=assoc,
                         size=size)
                   for assoc in (1, 2, 4, "full")
                   for size in PAPER_SIZES]
        batch = run_batch(queries, events,
                          surface_cache=SurfaceCache())
        assert batch.report.replays == 1
        assert batch.report.trace_passes <= 2     # the acceptance pin
        solo = run_sweep(full, events)
        for query, surface in zip(batch.queries, batch.surfaces):
            _assert_bitwise_equal(surface, solo)
            hits, misses = solo.cell(query.associativity, query.size)
            answer = query.answer(surface)
            assert answer["hits"] == hits
            assert answer["misses"] == misses
            assert answer["ratio"] == \
                solo.ratio(query.associativity, query.size)

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_warmup_window_projection_equivalence(self, events,
                                                  semantics):
        # Warm-up windows measure a *suffix* of the trace; projection
        # must hold there too (the group key keeps windows apart).
        for warmup in (0.0, 0.25, 0.9):
            spec_a = SweepSpec(cache="icache", sizes=(8, 16, 32),
                               associativities=(1,), double_pass=False,
                               warmup_fraction=warmup,
                               semantics=semantics)
            spec_b = SweepSpec(cache="icache", sizes=(16, 64),
                               associativities=(2, "full"),
                               double_pass=False,
                               warmup_fraction=warmup,
                               semantics=semantics)
            batch = run_batch([Query(spec=spec_a), Query(spec=spec_b)],
                              events, surface_cache=SurfaceCache())
            assert batch.report.replays == 1
            for query, surface in zip(batch.queries, batch.surfaces):
                _assert_bitwise_equal(surface,
                                      run_sweep(query.spec, events))


class TestGrouping:
    def test_disjoint_geometries_share_one_replay(self, events):
        a = SweepSpec(cache="itlb", sizes=(8, 32),
                      associativities=(1,))
        b = SweepSpec(cache="itlb", sizes=(16, 64),
                      associativities=(2, 4))
        batch = run_batch([Query(spec=a), Query(spec=b)], events,
                          surface_cache=SurfaceCache())
        assert batch.report.replays == 1
        assert batch.report.groups == 1
        assert batch.report.coalesced == 2
        assert batch.report.queries_per_replay == 2.0

    @pytest.mark.parametrize("field,values", [
        ("cache", ("itlb", "icache")),
        ("semantics", ("paper", "v2")),
        ("warmup_fraction", (0.25, 0.5)),
        ("dispatched_only", (True, False)),
        ("engine", ("auto", "single-pass")),
    ])
    def test_differing_field_splits_the_group(self, events, field,
                                              values):
        specs = [SweepSpec(**{**dict(cache="itlb", sizes=(8, 16),
                                     associativities=(1,)),
                              field: value}) for value in values]
        batch = run_batch([Query(spec=spec) for spec in specs], events,
                          surface_cache=SurfaceCache())
        assert batch.report.groups == 2
        assert batch.report.replays == 2
        assert batch.report.coalesced == 0

    def test_double_pass_and_window_split_the_group(self, events):
        a = SweepSpec(cache="itlb", sizes=(8,), associativities=(1,),
                      double_pass=True)
        b = SweepSpec(cache="itlb", sizes=(8,), associativities=(1,),
                      double_pass=False, warmup_fraction=0.25)
        batch = run_batch([Query(spec=a), Query(spec=b)], events)
        assert batch.report.groups == 2

    def test_grid_engine_falls_back_loudly(self, events):
        spec = SweepSpec(cache="itlb", sizes=(8, 16),
                         associativities=(1, 2), engine="grid")
        other = SweepSpec(cache="itlb", sizes=(32,),
                          associativities=(1,), engine="grid")
        batch = run_batch([Query(spec=spec), Query(spec=other)], events)
        assert batch.report.fallbacks == 2
        assert batch.report.replays == 2
        assert batch.report.coalesced == 0
        for query, surface in zip(batch.queries, batch.surfaces):
            _assert_bitwise_equal(surface, run_sweep(query.spec, events))

    def test_invalid_union_geometry_falls_back(self, events):
        # Valid individually; the union is not (8 % 3 != 0).
        a = SweepSpec(cache="itlb", sizes=(24,), associativities=(3,))
        b = SweepSpec(cache="itlb", sizes=(8, 16),
                      associativities=(1, 2))
        batch = run_batch([Query(spec=a), Query(spec=b)], events)
        assert batch.report.fallbacks == 2
        for query, surface in zip(batch.queries, batch.surfaces):
            _assert_bitwise_equal(surface, run_sweep(query.spec, events))

    def test_ineligible_union_falls_back(self, events):
        # 48/3 = 16 sets (eligible alone); 48/1 = 48 sets is not a
        # power of two, so the union has no superset property.
        a = SweepSpec(cache="itlb", sizes=(48,), associativities=(3,))
        b = SweepSpec(cache="itlb", sizes=(48,), associativities=(1,))
        batch = run_batch([Query(spec=a), Query(spec=b)], events)
        assert batch.report.fallbacks == 2
        for query, surface in zip(batch.queries, batch.surfaces):
            _assert_bitwise_equal(surface, run_sweep(query.spec, events))

    def test_full_only_query_merges_with_int_grid(self, events):
        a = SweepSpec(cache="icache", sizes=(8, 16),
                      associativities=("full",))
        b = SweepSpec(cache="icache", sizes=(16, 32),
                      associativities=(1, 2))
        batch = run_batch([Query(spec=a), Query(spec=b)], events,
                          surface_cache=SurfaceCache())
        assert batch.report.replays == 1
        for query, surface in zip(batch.queries, batch.surfaces):
            _assert_bitwise_equal(surface, run_sweep(query.spec, events))


class TestQueryValidation:
    SPEC = SweepSpec(cache="itlb", sizes=(8, 16), associativities=(1, 2))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            Query(spec=self.SPEC, kind="histogram")

    def test_curve_needs_a_swept_associativity(self):
        with pytest.raises(ValueError, match="needs an associativity"):
            Query(spec=self.SPEC, kind="curve")
        with pytest.raises(ValueError, match="not in the swept"):
            Query(spec=self.SPEC, kind="curve", associativity=4)

    def test_stats_needs_a_swept_size(self):
        with pytest.raises(ValueError, match="needs a size"):
            Query(spec=self.SPEC, kind="stats", associativity=1)
        with pytest.raises(ValueError, match="not in the swept sizes"):
            Query(spec=self.SPEC, kind="stats", associativity=1,
                  size=4096)

    def test_isoratio_target_range(self):
        with pytest.raises(ValueError, match="needs a target"):
            Query(spec=self.SPEC, kind="isoratio")
        for target in (0.0, 1.5, -1.0):
            with pytest.raises(ValueError, match="in \\(0, 1\\]"):
                Query(spec=self.SPEC, kind="isoratio", target=target)

    def test_full_column_reachable_via_include_full(self):
        spec = SweepSpec(cache="itlb", sizes=(8,),
                         associativities=(1,), include_full=True)
        Query(spec=spec, kind="curve", associativity="full")


class TestQueryFromRequest:
    def test_point_query_normalizes_to_single_cell_spec(self):
        query = query_from_request({"kind": "stats", "cache": "itlb",
                                    "associativity": 2, "size": 64})
        assert query.spec.sizes == (64,)
        assert query.spec.associativities == (2,)
        assert query.kind == "stats"

    def test_curve_normalizes_associativity_column(self):
        query = query_from_request({"kind": "curve", "cache": "icache",
                                    "associativity": 4,
                                    "warmup_fraction": 0.25,
                                    "double_pass": False})
        assert query.spec.associativities == (4,)
        assert query.spec.warmup_fraction == 0.25

    def test_wire_flags_map_to_spec_fields(self):
        query = query_from_request({"cache": "itlb", "sizes": [8, 16],
                                    "full": True, "opt": True,
                                    "semantics": "v2"})
        assert query.spec.include_full and query.spec.include_opt
        assert query.spec.semantics == "v2"

    @pytest.mark.parametrize("document,message", [
        ("not a dict", "must be an object"),
        ({"cache": "itlb", "flavor": "mild"}, "unknown query field"),
        ({"kind": "sweep"}, "needs a cache kind"),
        ({"cache": "l3"}, "needs a cache kind"),
        ({"cache": "itlb", "engine": "quantum"}, "unknown engine"),
        ({"cache": "itlb", "semantics": "v9"}, "unknown semantics"),
        ({"cache": "itlb", "sizes": [7]}, "multiple of associativity|bad sweep size"),
        ({"kind": "isoratio", "cache": "itlb", "target": 2.0},
         "in \\(0, 1\\]"),
    ])
    def test_malformed_requests_raise_client_facing_errors(
            self, document, message):
        with pytest.raises(ValueError, match=message):
            query_from_request(document)


class TestSurfaceCache:
    def test_lru_eviction_honors_byte_budget(self):
        cache = SurfaceCache(budget_bytes=160)  # fits two ~76B entries
        cache.put("a", {"n": 1, "pad": "x" * 60})
        cache.put("b", {"n": 2, "pad": "x" * 60})
        cache.put("c", {"n": 3, "pad": "x" * 60})  # evicts "a"
        assert not cache.contains("a")
        assert cache.contains("b") and cache.contains("c")
        assert cache.evicted == 1
        assert cache.stats()["bytes"] <= 160

    def test_get_refreshes_the_lru_clock(self):
        cache = SurfaceCache(budget_bytes=160)
        cache.put("a", {"n": 1, "pad": "x" * 60})
        cache.put("b", {"n": 2, "pad": "x" * 60})
        assert cache.get("a") is not None          # "b" is now oldest
        cache.put("c", {"n": 3, "pad": "x" * 60})
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_env_budget_and_kill_switch(self, monkeypatch):
        monkeypatch.setenv(planner.ENV_SURFACE_BUDGET, "123")
        assert SurfaceCache().budget_bytes == 123
        monkeypatch.setenv(planner.ENV_SURFACE_BUDGET, "lots")
        assert SurfaceCache().budget_bytes == \
            planner.DEFAULT_SURFACE_BUDGET
        assert SurfaceCache.enabled()
        monkeypatch.setenv(planner.ENV_SURFACE_CACHE, "0")
        assert not SurfaceCache.enabled()

    def test_single_flight_shares_one_computation(self):
        cache = SurfaceCache()
        gate = threading.Event()
        computed = []

        def compute():
            gate.wait(timeout=10)
            computed.append(1)
            return {"n": 42}

        outcomes = []

        def worker():
            payload, outcome = cache.get_or_compute("k", compute)
            outcomes.append((payload["n"], outcome))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        while not cache._inflight:       # a leader exists
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(computed) == 1
        kinds = [outcome for _, outcome in outcomes]
        assert kinds.count("computed") == 1
        assert set(kinds) <= {"computed", "shared", "hit"}
        assert all(n == 42 for n, _ in outcomes)
        assert cache.get("k") == {"n": 42}

    def test_failed_leader_does_not_wedge_the_key(self):
        cache = SurfaceCache()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return {"n": 7}

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", flaky)
        payload, outcome = cache.get_or_compute("k", flaky)
        assert payload == {"n": 7} and outcome == "computed"


class TestCacheInterplay:
    QUERIES = [
        Query(spec=SweepSpec(cache="itlb", sizes=(8, 16),
                             associativities=(1,))),
        Query(spec=SweepSpec(cache="itlb", sizes=(16, 32),
                             associativities=(2,))),
    ]

    def test_second_batch_is_all_memory_hits(self, tmp_path):
        _, events = _store_trace(tmp_path)
        memory = SurfaceCache()
        cold = run_batch(self.QUERIES, events, surface_cache=memory)
        assert cold.report.replays == 1
        warm = run_batch(self.QUERIES, events, surface_cache=memory)
        assert warm.report.replays == 0
        assert warm.report.memory_hits == len(self.QUERIES)
        for a, b in zip(cold.surfaces, warm.surfaces):
            _assert_bitwise_equal(a, b)

    def test_fresh_process_hits_the_disk_tier(self, tmp_path):
        _, events = _store_trace(tmp_path)
        run_batch(self.QUERIES, events, surface_cache=SurfaceCache())
        warm = run_batch(self.QUERIES, events,
                         surface_cache=SurfaceCache())
        assert warm.report.replays == 0
        assert warm.report.disk_hits == len(self.QUERIES)

    def test_projected_surfaces_serve_later_run_sweep_calls(
            self, tmp_path):
        store, events = _store_trace(tmp_path)
        run_batch(self.QUERIES, events, surface_cache=SurfaceCache())
        for query in self.QUERIES:
            key = result_cache_key(query.spec, events.store_key)
            assert store.result_cache().contains(key)
        telemetry.install(tmp_path / "t", fresh=True)
        run_sweep(self.QUERIES[0].spec, events)
        telemetry.finalize()
        counters = json.loads(
            (tmp_path / "t" / "metrics.json").read_text())["counters"]
        assert counters["result_cache.hit"] == 1

    def test_cached_superset_answers_new_projections(self, tmp_path):
        _, events = _store_trace(tmp_path)
        run_batch(self.QUERIES, events, surface_cache=SurfaceCache())
        # Different sub-grids, same union: the superset itself is the
        # cache hit, no replay.
        rotated = [
            Query(spec=SweepSpec(cache="itlb", sizes=(8, 32),
                                 associativities=(1, 2))),
            Query(spec=SweepSpec(cache="itlb", sizes=(16,),
                                 associativities=(2,))),
        ]
        warm = run_batch(rotated, events, surface_cache=SurfaceCache())
        assert warm.report.replays == 0
        assert warm.report.superset_hits == 1
        for query, surface in zip(warm.queries, warm.surfaces):
            _assert_bitwise_equal(surface, run_sweep(query.spec, events))

    def test_unstamped_trace_replays_every_batch(self, tmp_path):
        _, stamped = _store_trace(tmp_path)
        bare = stamped.copy()
        bare.store_key = bare.store_root = None
        memory = SurfaceCache()
        for _ in range(2):
            batch = run_batch(self.QUERIES, bare, surface_cache=memory)
            assert batch.report.replays == 1
            assert batch.report.memory_hits == 0
        assert len(memory) == 0

    def test_kill_switches_disable_both_tiers(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv(planner.ENV_SURFACE_CACHE, "0")
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        _, events = _store_trace(tmp_path)
        for _ in range(2):
            batch = run_batch(self.QUERIES, events,
                              surface_cache=SurfaceCache())
            assert batch.report.replays == 1
            assert batch.report.memory_hits == 0
            assert batch.report.disk_hits == 0

    def test_concurrent_batches_replay_once(self, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        _, events = _store_trace(tmp_path)
        memory = SurfaceCache()
        reports = []

        def worker():
            batch = run_batch(self.QUERIES, events,
                              surface_cache=memory)
            reports.append(batch.report)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(reports) == 3
        # However the three interleaved (hit / shared / computed), the
        # engine ran the superset exactly once.
        assert sum(report.replays for report in reports) == 1


class TestHierarchyPlanned:
    def test_paper_hierarchy_unchanged_by_planning(self, events):
        hierarchy = paper_hierarchy(include_full=True, include_opt=True)
        surfaces = run_hierarchy(hierarchy, events)
        for level, surface in zip(hierarchy.levels, surfaces):
            _assert_bitwise_equal(surface, run_sweep(level, events))

    def test_same_cache_levels_coalesce(self, events):
        hierarchy = HierarchySpec(
            name="itlb-pair",
            levels=(SweepSpec(cache="itlb", sizes=(8, 16),
                              associativities=(1,), label="small"),
                    SweepSpec(cache="itlb", sizes=(32, 64),
                              associativities=(2,), label="large")))
        surfaces, report = run_hierarchy_planned(hierarchy, events)
        assert len(surfaces) == 2
        assert report.replays == 1
        assert report.coalesced == 2

    def test_cli_sweep_prints_planner_footer(self, tmp_path, capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--sizes", "8,16", "--assoc", "1",
                         "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[planner: 2 queries -> " in out
        assert "replay(s)" in out and "cache hit(s)" in out


class TestTelemetry:
    def test_batch_emits_planner_counters_and_span(self, tmp_path):
        _, events = _store_trace(tmp_path)
        telemetry.install(tmp_path / "t", fresh=True)
        run_batch([
            Query(spec=SweepSpec(cache="itlb", sizes=(8,),
                                 associativities=(1,))),
            Query(spec=SweepSpec(cache="itlb", sizes=(16,),
                                 associativities=(1,))),
        ], events, surface_cache=SurfaceCache())
        telemetry.finalize()
        metrics = json.loads(
            (tmp_path / "t" / "metrics.json").read_text())
        counters = metrics["counters"]
        assert counters["planner.queries"] == 2
        assert counters["planner.replays"] == 1
        assert counters["planner.coalesced"] == 2
        spans = (tmp_path / "t" / "spans.jsonl").read_text()
        assert "planner.batch" in spans
