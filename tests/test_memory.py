"""Tests for absolute memory, segments, the ATLB and the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    BoundsTrap,
    FreeListExhausted,
    InvalidAddress,
    SegmentFault,
)
from repro.memory.absolute import AbsoluteMemory, BuddyAllocator
from repro.memory.atlb import ATLB
from repro.memory.fpa import address_format
from repro.memory.physical import DeviceSpec, MemoryHierarchy, default_hierarchy
from repro.memory.segments import SegmentDescriptor, SegmentTable
from repro.memory.tags import Word


class TestBuddyAllocator:
    def test_alignment_invariant(self):
        # Every 2^k block must sit on a multiple of 2^k (the paper's
        # "segments are aligned on multiples of their sizes").
        allocator = BuddyAllocator(1 << 12)
        for size in (1, 2, 3, 5, 32, 100, 512):
            base = allocator.allocate(size)
            block = allocator.block_size_at(base)
            assert block >= size
            assert base % block == 0

    def test_free_and_reuse(self):
        allocator = BuddyAllocator(64)
        base = allocator.allocate(32)
        allocator.free(base)
        again = allocator.allocate(32)
        assert again == base

    def test_coalescing(self):
        allocator = BuddyAllocator(64)
        a = allocator.allocate(32)
        b = allocator.allocate(32)
        allocator.free(a)
        allocator.free(b)
        # After coalescing the full arena is one block again.
        assert allocator.allocate(64) == 0

    def test_exhaustion(self):
        allocator = BuddyAllocator(32)
        allocator.allocate(32)
        with pytest.raises(FreeListExhausted):
            allocator.allocate(1)

    def test_oversized_request(self):
        with pytest.raises(FreeListExhausted):
            BuddyAllocator(32).allocate(64)

    def test_double_free_rejected(self):
        allocator = BuddyAllocator(32)
        base = allocator.allocate(4)
        allocator.free(base)
        with pytest.raises(InvalidAddress):
            allocator.free(base)

    def test_non_power_of_two_arena(self):
        with pytest.raises(InvalidAddress):
            BuddyAllocator(100)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 64), min_size=1, max_size=40))
    def test_no_overlap(self, sizes):
        allocator = BuddyAllocator(1 << 12)
        spans = []
        for size in sizes:
            try:
                base = allocator.allocate(size)
            except FreeListExhausted:
                break
            block = allocator.block_size_at(base)
            for other_base, other_end in spans:
                assert base + block <= other_base or base >= other_end
            spans.append((base, base + block))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 32), min_size=1, max_size=30))
    def test_free_all_restores_arena(self, sizes):
        allocator = BuddyAllocator(1 << 10)
        bases = [allocator.allocate(size) for size in sizes]
        for base in bases:
            allocator.free(base)
        assert allocator.free_words == 1 << 10
        assert allocator.allocate(1 << 10) == 0


class TestAbsoluteMemory:
    def test_unwritten_reads_uninitialized(self):
        memory = AbsoluteMemory(1 << 10)
        assert memory.read(100).is_uninitialized

    def test_write_read(self):
        memory = AbsoluteMemory(1 << 10)
        allocation = memory.allocate(4)
        memory.write(allocation.base, Word.small_integer(7))
        assert memory.read(allocation.base).value == 7

    def test_only_words_storable(self):
        memory = AbsoluteMemory(1 << 10)
        with pytest.raises(InvalidAddress):
            memory.write(0, 42)

    def test_free_scrubs(self):
        memory = AbsoluteMemory(1 << 10)
        allocation = memory.allocate(2)
        memory.write(allocation.base, Word.small_integer(1))
        memory.free(allocation.base)
        assert memory.read(allocation.base).is_uninitialized

    def test_grow_in_place(self):
        memory = AbsoluteMemory(1 << 10)
        allocation = memory.allocate(3)   # block of 4
        grown = memory.grow(allocation.base, 4)
        assert grown.base == allocation.base

    def test_grow_with_move_copies_words(self):
        memory = AbsoluteMemory(1 << 10)
        allocation = memory.allocate(2)
        memory.write(allocation.base, Word.small_integer(11))
        memory.write(allocation.base + 1, Word.small_integer(22))
        grown = memory.grow(allocation.base, 16)
        assert memory.read(grown.base).value == 11
        assert memory.read(grown.base + 1).value == 22

    def test_block_ops(self):
        memory = AbsoluteMemory(1 << 10)
        allocation = memory.allocate(4)
        words = [Word.small_integer(i) for i in range(4)]
        memory.write_block(allocation.base, words)
        assert memory.read_block(allocation.base, 4) == words
        memory.clear_block(allocation.base, 4)
        assert all(w.is_uninitialized
                   for w in memory.read_block(allocation.base, 4))


class TestSegmentTable:
    def _table(self):
        return SegmentTable(address_format(16), team=1)

    def test_allocate_names_distinct(self):
        table = self._table()
        names = {table.allocate_name(4) for _ in range(8)}
        assert len(names) == 8
        assert all(name[0] == 4 for name in names)

    def test_translate(self):
        table = self._table()
        name = table.allocate_name(4)
        table.install(name, SegmentDescriptor(base=128, length=10,
                                              class_tag=1))
        address = table.address_for(name, 3)
        assert table.translate(address) == 131

    def test_bounds_trap(self):
        table = self._table()
        name = table.allocate_name(4)
        table.install(name, SegmentDescriptor(base=0, length=4, class_tag=1))
        address = table.address_for(name, 9)
        with pytest.raises(BoundsTrap) as exc:
            table.translate(address)
        assert exc.value.offset == 9
        assert exc.value.length == 4

    def test_unmapped_faults(self):
        table = self._table()
        with pytest.raises(SegmentFault):
            table.descriptor((3, 0))

    def test_release(self):
        table = self._table()
        name = table.allocate_name(2)
        table.install(name, SegmentDescriptor(0, 4, 1))
        table.release(name)
        with pytest.raises(SegmentFault):
            table.descriptor(name)
        with pytest.raises(SegmentFault):
            table.release(name)

    def test_live_descriptors_excludes_forwarded(self):
        table = self._table()
        fmt = table.fmt
        a = table.allocate_name(2)
        table.install(a, SegmentDescriptor(0, 4, 1))
        b = table.allocate_name(3)
        forwarded = SegmentDescriptor(8, 4, 1,
                                      forward=table.address_for(a))
        table.install(b, forwarded)
        live = dict(table.live_descriptors())
        assert a in live and b not in live


class TestATLB:
    def test_fill_and_lookup(self):
        atlb = ATLB(8, 2)
        descriptor = SegmentDescriptor(0, 4, 1)
        assert atlb.lookup(0, (2, 3)) is None
        atlb.fill(0, (2, 3), descriptor)
        assert atlb.lookup(0, (2, 3)) is descriptor

    def test_team_isolation(self):
        atlb = ATLB(8, 2)
        descriptor = SegmentDescriptor(0, 4, 1)
        atlb.fill(0, (2, 3), descriptor)
        assert atlb.lookup(1, (2, 3)) is None

    def test_invalidate_team(self):
        atlb = ATLB(16, 2)
        descriptor = SegmentDescriptor(0, 4, 1)
        atlb.fill(0, (1, 0), descriptor)
        atlb.fill(0, (1, 1), descriptor)
        atlb.fill(1, (1, 0), descriptor)
        assert atlb.invalidate_team(0) == 2
        assert atlb.lookup(1, (1, 0)) is descriptor

    def test_invalidate_segment(self):
        atlb = ATLB(8, 2)
        descriptor = SegmentDescriptor(0, 4, 1)
        atlb.fill(0, (2, 3), descriptor)
        assert atlb.invalidate_segment(0, (2, 3)) is True
        assert atlb.lookup(0, (2, 3)) is None


class TestMemoryHierarchy:
    def _hierarchy(self):
        return MemoryHierarchy(
            [DeviceSpec("l1", 4, block_words=4, associativity=2,
                        latency_cycles=1),
             DeviceSpec("l2", 16, block_words=4, associativity=4,
                        latency_cycles=10)],
            backing_latency=100,
        )

    def test_first_access_goes_to_backing(self):
        hierarchy = self._hierarchy()
        result = hierarchy.access(0)
        assert result.level == 2
        assert result.device is None
        assert result.latency == 111

    def test_second_access_hits_l1(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0)
        result = hierarchy.access(1)    # same 4-word block
        assert result.device == "l1"
        assert result.latency == 1

    def test_l2_catches_l1_victims(self):
        hierarchy = self._hierarchy()
        # Touch 8 distinct blocks: more than l1 (4) but within l2 (16).
        for block in range(8):
            hierarchy.access(block * 4)
        result = hierarchy.access(0)
        assert result.device in ("l1", "l2")
        assert result.level <= 1

    def test_writeback_counted(self):
        hierarchy = self._hierarchy()
        for block in range(8):
            hierarchy.access(block * 4, write=True)
        assert hierarchy.total_writebacks > 0

    def test_flush(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0)
        hierarchy.flush()
        assert hierarchy.access(0).level == 2

    def test_amat_positive_after_traffic(self):
        hierarchy = default_hierarchy()
        for address in range(0, 4096, 8):
            hierarchy.access(address)
        assert hierarchy.amat() > 1.0

    def test_needs_devices(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])

    def test_stats_for_unknown_device(self):
        with pytest.raises(KeyError):
            self._hierarchy().stats_for("l3")
