"""Tests for floating point addresses (repro.memory.fpa, section 2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAddress
from repro.memory.fpa import (
    FORMAT_16,
    FORMAT_36,
    FPAddress,
    address_format,
    floating_capacity,
    multics_style_capacity,
)


class TestAddressFormat:
    def test_16_bit_split(self):
        # The paper's worked example format: e=4, m=12.
        assert FORMAT_16.exponent_bits == 4
        assert FORMAT_16.mantissa_bits == 12

    def test_36_bit_split(self):
        # "a 36 bit floating point address, consisting of a 5 bit
        # exponent and 31 bit mantissa".
        assert FORMAT_36.exponent_bits == 5
        assert FORMAT_36.mantissa_bits == 31

    def test_interned(self):
        assert address_format(16) is address_format(16)

    def test_tiny_format_rejected(self):
        with pytest.raises(InvalidAddress):
            address_format(2)

    @given(st.integers(min_value=4, max_value=64))
    def test_split_consumes_all_bits(self, bits):
        fmt = address_format(bits)
        assert fmt.exponent_bits + fmt.mantissa_bits == bits
        assert fmt.exponent_bits >= 1
        # The exponent field can express every legal exponent.
        assert fmt.max_exponent <= (1 << fmt.exponent_bits) - 1

    def test_max_segment_words(self):
        assert FORMAT_36.max_segment_words == 1 << 31

    def test_total_segment_names(self):
        # sum over E of 2^(m-E) = 2^(m+1) - 1.
        assert FORMAT_16.total_segment_names() == (1 << 13) - 1
        assert FORMAT_36.total_segment_names() == (1 << 32) - 1


class TestWorkedExample:
    """Section 2.2: 'the 16-bit floating point address 0x8345 has an
    exponent of 8.  Thus the offset field is the byte 0x45 and the
    segment number is 0x83.'"""

    def test_decode(self):
        address = FORMAT_16.from_packed(0x8345)
        assert address.exponent == 8
        assert address.offset == 0x45
        assert address.segment_field == 0x3
        assert address.packed_segment_name == 0x83

    def test_reencode(self):
        address = FORMAT_16.make(8, 0x3, 0x45)
        assert address.packed == 0x8345

    def test_span(self):
        assert FORMAT_16.from_packed(0x8345).span == 256


class TestPackUnpack:
    @given(st.data())
    def test_roundtrip(self, data):
        fmt = address_format(data.draw(st.sampled_from([16, 24, 36])))
        exponent = data.draw(st.integers(0, fmt.max_exponent))
        mantissa = data.draw(st.integers(0, (1 << fmt.mantissa_bits) - 1))
        packed = fmt.pack(exponent, mantissa)
        assert fmt.unpack(packed) == (exponent, mantissa)

    @given(st.data())
    def test_fields_roundtrip(self, data):
        fmt = address_format(36)
        exponent = data.draw(st.integers(0, fmt.max_exponent))
        seg_bits = fmt.mantissa_bits - exponent
        segment = data.draw(st.integers(0, (1 << seg_bits) - 1))
        offset = data.draw(st.integers(0, (1 << exponent) - 1))
        address = fmt.make(exponent, segment, offset)
        assert address.segment_field == segment
        assert address.offset == offset
        again = fmt.from_packed(address.packed)
        assert again == address

    def test_exponent_out_of_range(self):
        with pytest.raises(InvalidAddress):
            FORMAT_16.pack(13, 0)

    def test_mantissa_out_of_range(self):
        with pytest.raises(InvalidAddress):
            FORMAT_16.pack(0, 1 << 12)

    def test_offset_exceeding_span(self):
        with pytest.raises(InvalidAddress):
            FORMAT_16.make(4, 0, 16)


class TestExponentForSize:
    def test_small_sizes(self):
        assert FORMAT_36.exponent_for_size(0) == 0
        assert FORMAT_36.exponent_for_size(1) == 0
        assert FORMAT_36.exponent_for_size(2) == 1
        assert FORMAT_36.exponent_for_size(3) == 2
        assert FORMAT_36.exponent_for_size(32) == 5
        assert FORMAT_36.exponent_for_size(33) == 6

    def test_largest(self):
        assert FORMAT_36.exponent_for_size(1 << 31) == 31

    def test_too_large(self):
        with pytest.raises(InvalidAddress):
            FORMAT_36.exponent_for_size((1 << 31) + 1)

    @given(st.integers(min_value=1, max_value=1 << 31))
    def test_covers_size(self, size):
        exponent = FORMAT_36.exponent_for_size(size)
        assert (1 << exponent) >= size
        assert exponent == 0 or (1 << (exponent - 1)) < size


class TestAddressArithmetic:
    def test_with_offset(self):
        base = FORMAT_16.make(8, 0x3, 0)
        moved = base.with_offset(0x45)
        assert moved.packed == 0x8345
        assert moved.segment_name == base.segment_name

    def test_step(self):
        address = FORMAT_16.make(8, 0x3, 0x10)
        assert address.step(5).offset == 0x15
        assert address.step(-5).offset == 0x0B

    def test_step_out_of_span(self):
        address = FORMAT_16.make(4, 0, 15)
        with pytest.raises(InvalidAddress):
            address.step(1)
        with pytest.raises(InvalidAddress):
            address.step(-16)

    def test_base(self):
        assert FORMAT_16.from_packed(0x8345).base().offset == 0

    @given(st.integers(0, 0xFF), st.integers(0, 0xFF))
    def test_step_commutes_with_offset(self, start, other):
        address = FORMAT_16.make(8, 0x3, start)
        assert address.with_offset(other) == \
            FORMAT_16.make(8, 0x3, other)


class TestCapacityComparison:
    """The MULTICS comparison of section 2.2."""

    def test_multics_36(self):
        segments, words = multics_style_capacity(36)
        assert segments == 1 << 18   # 256K segments
        assert words == 1 << 18      # 256K words each

    def test_floating_36(self):
        names, words = floating_capacity(36)
        assert names == (1 << 32) - 1     # ~4 billion names
        assert words == 1 << 31           # 2 billion word segments

    def test_floating_dominates_both_limits(self):
        multics_segments, multics_words = multics_style_capacity(36)
        floating_names, floating_words = floating_capacity(36)
        assert floating_names > multics_segments
        assert floating_words > multics_words

    def test_segment_names_per_exponent(self):
        # One-word segments get the most names; the largest size class
        # gets exactly one name.
        assert FORMAT_36.segment_names_for_exponent(0) == 1 << 31
        assert FORMAT_36.segment_names_for_exponent(31) == 1
