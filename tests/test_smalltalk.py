"""Tests for the Smalltalk front end (lexer, parser, compiler)."""

import pytest

from repro.core.machine import COMMachine
from repro.errors import CompileError
from repro.memory.tags import Tag
from repro.smalltalk import compile_program, parse, parse_expression
from repro.smalltalk.lexer import tokenize
from repro.smalltalk.nodes import (
    Assign,
    BlockNode,
    Literal,
    Return,
    Send,
    VarRef,
)


def run_st(source: str, budget: int = 500_000):
    machine = COMMachine()
    main = compile_program(machine, source)
    result = machine.run_program(main, max_instructions=budget)
    return result, machine


class TestLexer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize("x := 3 + y foo: #bar.")]
        assert kinds == ["ident", "assign", "int", "binary", "ident",
                         "keyword", "atom", "period", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize('x "a comment" y')
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_line_numbers(self):
        tokens = tokenize('"one\ntwo"\nx')
        assert tokens[0].line == 3

    def test_keywords_and_blockargs(self):
        tokens = tokenize("[:each | each]")
        assert tokens[0].kind == "lbracket"
        assert tokens[1].kind == "blockarg"

    def test_float_vs_period(self):
        tokens = tokenize("3.5. x")
        assert tokens[0].kind == "float"
        assert tokens[1].kind == "period"

    def test_modulo_selector(self):
        tokens = tokenize("a \\\\ b")
        assert tokens[1].kind == "binary"


class TestParser:
    def test_precedence_unary_binary_keyword(self):
        expr = parse_expression("a foo + b bar max: c baz")
        assert isinstance(expr, Send)
        assert expr.selector == "max:"
        left = expr.receiver
        assert left.selector == "+"
        assert left.receiver.selector == "foo"
        assert expr.args[0].selector == "baz"

    def test_binary_left_assoc(self):
        expr = parse_expression("1 + 2 + 3")
        assert expr.selector == "+"
        assert expr.receiver.selector == "+"

    def test_parens(self):
        expr = parse_expression("1 + (2 * 3)")
        assert expr.args[0].selector == "*"

    def test_keyword_collects_parts(self):
        expr = parse_expression("d at: 1 put: 2")
        assert expr.selector == "at:put:"
        assert len(expr.args) == 2

    def test_block_with_params(self):
        expr = parse_expression("[:a :b | a + b]")
        assert isinstance(expr, BlockNode)
        assert expr.params == ["a", "b"]

    def test_program_sections(self):
        program = parse("""
        class Point extends Object fields: x y
        Point >> getX
            ^x
        main | t |
            t := 1.
            ^t
        """)
        assert program.classes[0].fields == ["x", "y"]
        assert program.methods[0].selector == "getX"
        assert isinstance(program.methods[0].body[0], Return)
        assert program.main.temps == ["t"]

    def test_keyword_method_pattern(self):
        program = parse("""
        Point >> setX: ax y: ay
            ^self
        main
            ^1
        """)
        method = program.methods[0]
        assert method.selector == "setX:y:"
        assert method.params == ["ax", "ay"]

    def test_binary_method_pattern(self):
        program = parse("""
        Point >> + other
            ^self
        main
            ^1
        """)
        assert program.methods[0].selector == "+"
        assert program.methods[0].params == ["other"]

    def test_statement_sequence(self):
        program = parse("main\n    a := 1. b := 2. ^a")
        kinds = [type(s) for s in program.main.body]
        assert kinds == [Assign, Assign, Return]

    def test_error_on_garbage(self):
        with pytest.raises(CompileError):
            parse("main\n    ^)")


class TestCompiledPrograms:
    def test_simple_return(self):
        result, _ = run_st("main\n    ^41 + 1")
        assert result.value == 42

    def test_temporaries(self):
        result, _ = run_st("""
        main | a b |
            a := 6.
            b := 7.
            ^a * b
        """)
        assert result.value == 42

    def test_if_true_false(self):
        result, _ = run_st("""
        main | x |
            x := 3 < 5 ifTrue: [10] ifFalse: [20].
            x := x + (5 < 3 ifTrue: [1] ifFalse: [2]).
            ^x
        """)
        assert result.value == 12

    def test_if_without_else_yields_nil(self):
        result, _ = run_st("""
        main | x |
            x := false ifTrue: [1].
            x == nil ifTrue: [^99].
            ^0
        """)
        assert result.value == 99

    def test_while(self):
        result, _ = run_st("""
        main | i total |
            i := 0. total := 0.
            [i < 10] whileTrue: [total := total + i. i := i + 1].
            ^total
        """)
        assert result.value == 45

    def test_to_do(self):
        result, _ = run_st("""
        main | total |
            total := 0.
            1 to: 10 do: [:k | total := total + k].
            ^total
        """)
        assert result.value == 55

    def test_to_by_do(self):
        result, _ = run_st("""
        main | total |
            total := 0.
            0 to: 10 by: 2 do: [:k | total := total + k].
            ^total
        """)
        assert result.value == 30

    def test_times_repeat(self):
        result, _ = run_st("""
        main | n |
            n := 1.
            5 timesRepeat: [n := n * 2].
            ^n
        """)
        assert result.value == 32

    def test_and_or_short_circuit(self):
        result, _ = run_st("""
        main | a b |
            a := (1 < 2) and: [3 < 4].
            b := (2 < 1) or: [4 < 3].
            a ifTrue: [b ifFalse: [^77]].
            ^0
        """)
        assert result.value == 77

    def test_comparison_spellings(self):
        result, _ = run_st("""
        main | n |
            n := 0.
            3 > 2 ifTrue: [n := n + 1].
            3 >= 3 ifTrue: [n := n + 1].
            3 ~= 4 ifTrue: [n := n + 1].
            ^n
        """)
        assert result.value == 3

    def test_instance_variables(self):
        result, _ = run_st("""
        class Counter extends Object fields: count
        Counter >> init
            count := 0. ^self
        Counter >> bump
            count := count + 1. ^count
        main | c |
            c := Counter new.
            c init.
            c bump. c bump.
            ^c bump
        """)
        assert result.value == 3

    def test_field_inheritance(self):
        result, _ = run_st("""
        class Base extends Object fields: a
        class Derived extends Base fields: b
        Derived >> fill
            a := 10. b := 32. ^self
        Derived >> total
            ^a + b
        main | d |
            d := Derived new.
            d fill.
            ^d total
        """)
        assert result.value == 42

    def test_keyword_send_three_args(self):
        result, _ = run_st("""
        class T extends Object
        T >> a: x b: y c: z
            ^x + y + z
        main | t |
            t := T new.
            ^t a: 1 b: 2 c: 3
        """)
        assert result.value == 6

    def test_array_primitives(self):
        result, _ = run_st("""
        main | arr total |
            arr := Array new: 5.
            0 to: 4 do: [:i | arr at: i put: i * i].
            total := 0.
            0 to: 4 do: [:i | total := total + (arr at: i)].
            ^total
        """)
        assert result.value == 30

    def test_float_arithmetic(self):
        result, _ = run_st("""
        main | x |
            x := 1.5 + 2.5.
            x := x * 2.0.
            ^x
        """)
        assert result.tag is Tag.FLOAT
        assert result.value == 8.0

    def test_recursion(self):
        result, _ = run_st("""
        SmallInteger >> fib
            self < 2 ifTrue: [^self].
            ^(self - 1) fib + (self - 2) fib
        main
            ^12 fib
        """)
        assert result.value == 144

    def test_polymorphic_send(self):
        result, _ = run_st("""
        class Circle extends Object fields: r
        class Square extends Object fields: s
        Circle >> setR: n
            r := n. ^self
        Square >> setS: n
            s := n. ^self
        Circle >> area
            ^r * r * 3
        Square >> area
            ^s * s
        main | shapes total |
            shapes := Array new: 2.
            shapes at: 0 put: (Circle new setR: 2).
            shapes at: 1 put: (Square new setS: 3).
            total := 0.
            0 to: 1 do: [:i | total := total + (shapes at: i) area].
            ^total
        """)
        assert result.value == 21

    def test_implicit_return_self(self):
        result, _ = run_st("""
        class T extends Object fields: v
        T >> setV
            v := 5
        main | t |
            t := T new.
            t setV.
            ^t at: 0
        """)
        assert result.value == 5

    def test_main_without_return_halts(self):
        machine = COMMachine()
        main = compile_program(machine, "main | x |\n    x := 1")
        machine.start(main)
        machine.run()
        assert machine.halted


class TestCompilerErrors:
    def test_unknown_variable(self):
        with pytest.raises(CompileError):
            run_st("main\n    ^mystery")

    def test_assign_to_unknown(self):
        with pytest.raises(CompileError):
            run_st("main\n    mystery := 1. ^1")

    def test_standalone_block_rejected(self):
        with pytest.raises(CompileError):
            run_st("main | b |\n    b := [1]. ^1")

    def test_missing_main(self):
        with pytest.raises(CompileError):
            run_st("SmallInteger >> f\n    ^1")

    def test_duplicate_class(self):
        with pytest.raises(CompileError):
            run_st("""
            class A extends Object
            class A extends Object
            main
                ^1
            """)

    def test_method_on_unknown_class(self):
        with pytest.raises(CompileError):
            run_st("""
            Zorp >> f
                ^1
            main
                ^1
            """)

    def test_to_do_block_arity(self):
        with pytest.raises(CompileError):
            run_st("main\n    1 to: 3 do: [:a :b | a]. ^1")


class TestCompilerCodeQuality:
    def test_frame_sizes_stay_small(self):
        machine = COMMachine()
        compile_program(machine, """
        SmallInteger >> poly
            ^((self + 1) * (self + 2)) + ((self + 3) * (self + 4))
        main
            ^3 poly
        """)
        # Smalltalk methods are small; even nested expressions fit well
        # inside a 32-word context (the paper's design assumption).
        assert machine.frame_sizes.fraction_fitting(32) == 1.0

    def test_scratch_slots_released(self):
        # Chained expressions must reuse scratch slots, not leak them.
        result, machine = run_st("""
        main | a |
            a := ((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8)).
            a := a + ((1 + 2) * (3 + 4)).
            ^a
        """)
        assert result.value == 21 + 165 + 21
