"""The predecode layer: equivalence with the slow path and invalidation.

The predecode layer (repro.core.decoded) exists purely to make the
simulator faster; it must be architecturally invisible.  These tests
run the same workload with predecode enabled and disabled and require
byte-identical cycle counts, AccessProfile tallies, trace events,
cache statistics and results -- plus the invalidation rules: plans die
on method re-installation and on heap writes into method objects.
"""

import pytest

from repro.core.assembler import load_program
from repro.core.machine import COMMachine
from repro.errors import ProtectionTrap
from repro.fith.interp import FithMachine
from repro.fith.programs import fib as fith_fib
from repro.memory.tags import Word
from repro.smalltalk import compile_program

_FIB = """
SmallInteger >> fib
    self < 2 ifTrue: [^self].
    ^(self - 1) fib + (self - 2) fib
main
    ^10 fib
"""


def _run_fib(predecode: bool):
    machine = COMMachine(predecode=predecode)
    main = compile_program(machine, _FIB)
    trace = machine.enable_trace()
    machine.run_program(main, max_instructions=1_000_000)
    return machine, trace


def _profile_of(machine):
    profile = machine.profile
    return (profile.context_reads, profile.context_writes,
            profile.heap_reads, profile.heap_writes,
            profile.instruction_fetches)


class TestEquivalence:
    """Predecode on vs off must be observationally identical."""

    def test_fib_cycles_profile_and_trace_identical(self):
        fast, fast_trace = _run_fib(predecode=True)
        slow, slow_trace = _run_fib(predecode=False)
        assert fast.cycles.snapshot() == slow.cycles.snapshot()
        assert _profile_of(fast) == _profile_of(slow)
        assert fast_trace == slow_trace
        assert len(fast_trace) == fast.cycles.instructions
        assert fast.result().value == slow.result().value == 55

    def test_cache_statistics_identical(self):
        fast, _ = _run_fib(predecode=True)
        slow, _ = _run_fib(predecode=False)
        for name in ("hits", "misses", "fills", "evictions"):
            assert getattr(fast.itlb.stats, name) == \
                getattr(slow.itlb.stats, name)
            assert getattr(fast.icache.stats, name) == \
                getattr(slow.icache.stats, name)
        fast_cc, slow_cc = fast.context_cache.stats, slow.context_cache.stats
        assert fast_cc.fast_reads == slow_cc.fast_reads
        assert fast_cc.fast_writes == slow_cc.fast_writes
        assert fast_cc.block_clears == slow_cc.block_clears

    def test_fast_path_is_actually_used(self):
        fast, _ = _run_fib(predecode=True)
        assert len(fast.decoded) > 0
        assert fast.decoded.installs >= 2   # fib + main at least

    def test_memory_and_branch_workload_identical(self):
        source = """
        main
            c2 = #Array new: 8
            c3 = 0
            c4 = 0
        loop:
            c2 [ c3 ] = c3
            c5 = c2 [ c3 ]
            c4 = c4 + c5
            c3 = c3 + 1
            c6 = c3 < 8
            jt c6 loop
            c0 = c4
            halt
        """
        results = {}
        for predecode in (True, False):
            machine = COMMachine(predecode=predecode)
            main = load_program(machine, source)
            trace = machine.enable_trace()
            result = machine.run_program(main, max_instructions=100_000)
            results[predecode] = (result.value, machine.cycles.snapshot(),
                                  _profile_of(machine), trace)
        assert results[True] == results[False]
        assert results[True][0] == 28


class TestInvalidation:
    # Re-installation shootdown (ITLB + decoded plans, old callers see
    # the new method) is covered by test_machine.py::
    # test_redefinition_invalidates_decoded_plans.

    def test_heap_write_into_method_drops_plans(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c2 = 1 + 2
            c0 = c2
            halt
        """)
        assert machine.run_program(main).value == 3
        compiled = machine.method_for(
            machine.registry.by_name("Object"), "__main__")
        key = compiled.code_address.segment_name
        assert key in machine.decoded.by_segment
        # Patch the method's first word with a non-instruction: the
        # write watcher must drop the stale plans so the next run sees
        # the new memory contents (and traps on the bad word).
        machine.heap.store(compiled.code_address, 0, Word.small_integer(7))
        assert key not in machine.decoded.by_segment
        with pytest.raises(ProtectionTrap):
            machine.run_program(main)

    def test_freed_code_drops_plans(self):
        machine = COMMachine()
        main = load_program(machine, """
        main
            c0 = 1
            halt
        """)
        machine.run_program(main)
        compiled = machine.method_for(
            machine.registry.by_name("Object"), "__main__")
        key = compiled.code_address.segment_name
        assert key in machine.decoded.by_segment
        machine.heap.free(compiled.code_address)
        assert key not in machine.decoded.by_segment

    def test_predecode_disabled_keeps_no_plans(self):
        machine = COMMachine(predecode=False)
        main = load_program(machine, """
        main
            c0 = 1
            halt
        """)
        machine.run_program(main)
        assert len(machine.decoded) == 0


class TestFithPlans:
    def test_plans_cached_and_results_unchanged(self):
        machine = FithMachine(trace=True)
        machine.run_source(fith_fib(scale=1), max_steps=2_000_000)
        word = machine._main
        assert word.plan is not None
        assert len(word.plan) == len(word.instructions)
        assert len(machine.trace) == machine.steps
        # Every traced event carries the predecoded opcode/dispatch bit.
        sends = [event for event in machine.trace if event.dispatched]
        assert sends

    def test_send_memo_cleared_on_reload(self):
        machine = FithMachine()
        machine.run_source(": twice 2 * ; 4 twice .")
        assert machine._send_memo
        machine.load(": twice 3 * ; 4 twice .")
        assert not machine._send_memo
        machine.run()
        assert machine.output[-1].value == 12
