"""Tests for the trace-driven cache simulator (repro.trace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    ascii_plot,
    simulate_icache,
    simulate_itlb,
    sweep_icache,
    sweep_itlb,
)
from repro.trace.events import (
    TraceEvent,
    addresses,
    dispatched_only,
    split_warmup,
)
from repro.trace.semantics import (
    DEFAULT_SEMANTICS,
    QUIRKS,
    SEMANTICS,
    reset_index,
    validate_semantics,
    validate_warmup_fraction,
)
from repro.trace.workloads import monomorphic_trace


def _synthetic(keys, repeat=10):
    """A trace touching the given (opcode, class) keys round-robin."""
    events = []
    for r in range(repeat):
        for index, (opcode, cls) in enumerate(keys):
            events.append(TraceEvent(index, opcode, cls))
    return events


class TestTraceEvents:
    def test_itlb_key(self):
        event = TraceEvent(10, 5, 7)
        assert event.itlb_key == (5, (7,))

    def test_split_warmup(self):
        events = [TraceEvent(i, 1, 1) for i in range(100)]
        warm, measure = split_warmup(events, 0.25)
        assert len(warm) == 25
        assert len(measure) == 75

    def test_split_warmup_validation(self):
        with pytest.raises(ValueError):
            split_warmup([], 1.5)

    def test_dispatched_only(self):
        events = [TraceEvent(0, 1, 1, dispatched=True),
                  TraceEvent(1, 2, 1, dispatched=False)]
        assert [e.opcode for e in dispatched_only(events)] == [1]

    def test_addresses(self):
        events = [TraceEvent(3, 1, 1), TraceEvent(9, 1, 1)]
        assert list(addresses(events)) == [3, 9]


class TestSimulateITLB:
    def test_monomorphic_trace_is_all_hits(self):
        events = monomorphic_trace(1000)
        stats = simulate_itlb(events, 8, 2, warmup_fraction=0.1)
        assert stats.hit_ratio == 1.0

    def test_small_cache_thrashes_many_keys(self):
        keys = [(op, 1) for op in range(100)]
        events = _synthetic(keys, repeat=5)
        small = simulate_itlb(events, 8, 2, warmup_fraction=0.0)
        large = simulate_itlb(events, 128, 2, warmup_fraction=0.0)
        assert small.hit_ratio < large.hit_ratio

    def test_double_pass_removes_compulsory_misses(self):
        keys = [(op, 1) for op in range(50)]
        events = _synthetic(keys, repeat=2)
        single = simulate_itlb(events, 128, 2, warmup_fraction=0.0)
        double = simulate_itlb(events, 128, 2, double_pass=True)
        assert double.hit_ratio == 1.0
        assert single.hit_ratio < 1.0

    def test_dispatched_filter(self):
        events = [TraceEvent(i, 1, 1, dispatched=(i % 2 == 0))
                  for i in range(100)]
        stats = simulate_itlb(events, 8, 2, warmup_fraction=0.0)
        assert stats.accesses == 50

    def test_warmup_excluded_from_stats(self):
        events = [TraceEvent(i, i, 1) for i in range(100)]
        stats = simulate_itlb(events, 256, 2, warmup_fraction=0.5)
        assert stats.accesses == 50


class TestSimulateICache:
    def test_loop_reuse(self):
        events = [TraceEvent(i % 16, 1, 1) for i in range(1000)]
        stats = simulate_icache(events, 64, 2, warmup_fraction=0.1)
        assert stats.hit_ratio == 1.0

    def test_streaming_never_hits(self):
        events = [TraceEvent(i, 1, 1) for i in range(1000)]
        stats = simulate_icache(events, 64, 2, warmup_fraction=0.0)
        assert stats.hit_ratio == 0.0

    def test_line_words_capture_spatial_locality(self):
        events = [TraceEvent(i, 1, 1) for i in range(1024)]
        no_lines = simulate_icache(events, 64, 2, line_words=1,
                                   warmup_fraction=0.0)
        lines = simulate_icache(events, 64, 2, line_words=8,
                                warmup_fraction=0.0)
        assert lines.hit_ratio > no_lines.hit_ratio


class TestSweeps:
    def _events(self):
        keys = [(op, cls) for op in range(20) for cls in range(4)]
        return _synthetic(keys, repeat=4)

    def test_sweep_shape(self):
        result = sweep_itlb(self._events(), sizes=(8, 32, 128),
                            associativities=(1, 2))
        assert set(result.ratios) == {1, 2}
        assert set(result.ratios[1]) == {8, 32, 128}

    def test_hit_ratio_monotone_in_size_full_assoc(self):
        events = self._events()
        result = sweep_itlb(events, sizes=(8, 16, 32, 64, 128),
                            associativities=("full",),
                            warmup_fraction=0.0)
        ratios = [result.ratio("full", s) for s in (8, 16, 32, 64, 128)]
        assert ratios == sorted(ratios)

    def test_smallest_size_reaching(self):
        events = _synthetic([(op, 1) for op in range(4)], repeat=20)
        result = sweep_itlb(events, sizes=(8, 128),
                            associativities=(2,), double_pass=True)
        assert result.smallest_size_reaching(0.99, 2) == 8
        assert result.smallest_size_reaching(1.1, 2) is None

    def test_table_renders(self):
        result = sweep_itlb(self._events(), sizes=(8, 16),
                            associativities=(1, 2))
        table = result.table()
        assert "1-way" in table and "2-way" in table
        assert "16" in table

    def test_icache_sweep(self):
        result = sweep_icache(self._events(), sizes=(8, 64),
                              associativities=(1,))
        assert 0.0 <= result.ratio(1, 8) <= 1.0

    def test_ascii_plot(self):
        result = sweep_itlb(self._events(), sizes=PAPER_SIZES,
                            associativities=PAPER_ASSOCIATIVITIES)
        plot = ascii_plot(result)
        assert "legend" in plot
        assert plot.count("\n") > 10


class TestWarmupEdgeCases:
    """Pin the warm-up window semantics, including the documented
    quirks -- the single-pass sweep engine replicates these
    reference-for-reference (see repro/sweep), so they are
    characterization tests, not aspirations."""

    def _events(self, n=40):
        return [TraceEvent(i % 7, i % 5, 1) for i in range(n)]

    def test_zero_warmup_measures_everything(self):
        events = self._events()
        itlb = simulate_itlb(events, 16, 2, warmup_fraction=0.0)
        assert itlb.accesses == len(events)
        icache = simulate_icache(events, 16, 2, warmup_fraction=0.0)
        assert icache.accesses == len(events)

    def test_tiny_trace_rounding(self):
        # int() truncation: 3 events at 0.25 rounds the cut to zero,
        # 0.5 cuts one event, 0.9 cuts two.
        events = self._events(3)
        assert simulate_icache(events, 8, 1,
                               warmup_fraction=0.25).accesses == 3
        assert simulate_icache(events, 8, 1,
                               warmup_fraction=0.5).accesses == 2
        assert simulate_icache(events, 8, 1,
                               warmup_fraction=0.9).accesses == 1

    def test_whole_trace_warmup_itlb_yields_empty_stats(self):
        stats = simulate_itlb(self._events(), 16, 2,
                              warmup_fraction=1.0)
        assert stats.accesses == 0
        assert stats.hit_ratio == 0.0

    def test_whole_trace_warmup_icache_quirk_measures_everything(self):
        # simulate_icache resets only when the loop reaches the cut
        # index; a cut at len(events) never fires, so (unlike the
        # ITLB) the whole trace lands in the stats.
        events = self._events()
        stats = simulate_icache(events, 16, 2, warmup_fraction=1.0)
        assert stats.accesses == len(events)

    def test_cut_on_non_dispatched_event_never_resets(self):
        # The dispatched filter is applied before the cut check, so a
        # warm-up boundary landing on a non-dispatched event means the
        # reset never happens and every dispatched event is measured.
        events = [TraceEvent(i, i % 3, 1, dispatched=(i != 10))
                  for i in range(20)]
        stats = simulate_itlb(events, 16, 2, warmup_fraction=0.5)
        assert stats.accesses == 19  # all dispatched, warm-up included

    def test_cut_on_dispatched_event_excludes_warmup(self):
        events = [TraceEvent(i, i % 3, 1) for i in range(20)]
        stats = simulate_itlb(events, 16, 2, warmup_fraction=0.5)
        assert stats.accesses == 10

    def test_double_pass_equals_doubled_trace_with_half_warmup(self):
        # "A warmup trace was run before the measurement trace": the
        # double-pass flag is exactly a doubled trace whose first half
        # is the warm-up (the boundary event is dispatched here, so
        # the mid-trace reset fires).
        events = [TraceEvent(i % 11, i % 6, i % 3) for i in range(60)]
        double = simulate_itlb(events, 16, 2, double_pass=True)
        manual = simulate_itlb(events + events, 16, 2,
                               warmup_fraction=0.5)
        assert (double.hits, double.misses) == (manual.hits,
                                                manual.misses)
        double = simulate_icache(events, 16, 2, double_pass=True)
        manual = simulate_icache(events + events, 16, 2,
                                 warmup_fraction=0.5)
        assert (double.hits, double.misses) == (manual.hits,
                                                manual.misses)

    def test_double_pass_ignores_warmup_fraction(self):
        events = self._events()
        a = simulate_itlb(events, 16, 2, double_pass=True,
                          warmup_fraction=0.0)
        b = simulate_itlb(events, 16, 2, double_pass=True,
                          warmup_fraction=0.9)
        assert (a.hits, a.misses) == (b.hits, b.misses)


class TestSemanticsModule:
    """The audited window-placement module itself (repro.trace.semantics):
    every quirk in the family, and its v2 counterpart, pinned at the
    reset_index level so all four consumer layers inherit the same
    truth."""

    def _events(self, n=20, hole=10):
        return [TraceEvent(i, i % 3, 1, dispatched=(i != hole))
                for i in range(n)]

    def test_registry_and_validation(self):
        assert DEFAULT_SEMANTICS == "paper"
        assert SEMANTICS == ("paper", "v2")
        assert set(QUIRKS) == {"raw-index-cut", "skipped-itlb-reset",
                               "asymmetric-end-of-trace"}
        with pytest.raises(ValueError, match="semantics"):
            validate_semantics("v1")
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            validate_warmup_fraction(1.0)
        assert validate_warmup_fraction(0.0) == 0.0

    def test_paper_raw_index_cut(self):
        # 19 dispatched refs; cut at raw index 5 (all dispatched
        # before it) -> reset before reference 5.
        events = self._events()
        assert reset_index("paper", "itlb", events, 19,
                           warmup_fraction=0.25) == 5

    def test_paper_skipped_itlb_reset(self):
        # Cut at raw index 10 lands on the filtered-out event: never
        # resets under paper, always under v2.
        events = self._events()
        assert reset_index("paper", "itlb", events, 19,
                           warmup_fraction=0.5) is None
        assert reset_index("v2", "itlb", events, 19,
                           warmup_fraction=0.5) == 9

    def test_paper_asymmetric_end_of_trace(self):
        events = self._events()
        assert reset_index("paper", "itlb", events, 19,
                           warmup_fraction=1.0) == 19   # zero stats
        assert reset_index("paper", "icache", events, 20,
                           warmup_fraction=1.0) is None  # never fires
        # v2: symmetric -- both reset after the last reference.
        assert reset_index("v2", "itlb", events, 19,
                           warmup_fraction=1.0) == 19
        assert reset_index("v2", "icache", events, 20,
                           warmup_fraction=1.0) == 20

    def test_v2_cut_over_reference_stream(self):
        events = self._events()
        # int(19 * 0.25) = 4: the cut counts what the ITLB sees.
        assert reset_index("v2", "itlb", events, 19,
                           warmup_fraction=0.25) == 4
        # Unfiltered streams agree between versions away from the
        # edges: refs == events, so the cut index coincides.
        assert reset_index("v2", "icache", events, 20,
                           warmup_fraction=0.25) == \
            reset_index("paper", "icache", events, 20,
                        warmup_fraction=0.25) == 5

    def test_paper_negative_fraction_never_resets(self):
        # The historical loops compared a negative cut against
        # non-negative loop indices: no reset, everything measured.
        # (reset_index must not let Python's negative indexing probe
        # events[cut] and invent a mid-trace reset.)
        events = self._events()
        assert reset_index("paper", "itlb", events, 19,
                           warmup_fraction=-0.5) is None
        assert reset_index("paper", "icache", events, 20,
                           warmup_fraction=-0.5) is None
        stats = simulate_itlb(events, 16, 2, warmup_fraction=-0.5)
        assert stats.accesses == 19
        stats = simulate_icache(events, 16, 2, warmup_fraction=-0.5)
        assert stats.accesses == 20

    def test_simulate_semantics_validated(self):
        events = self._events()
        with pytest.raises(ValueError, match="semantics"):
            simulate_itlb(events, 16, 2, semantics="v3")
        with pytest.raises(ValueError, match="semantics"):
            simulate_icache(events, 16, 2, semantics="v3")

    def test_double_pass_identical_under_both_semantics(self):
        events = self._events(60, hole=7)
        for simulate in (simulate_itlb, simulate_icache):
            paper = simulate(events, 16, 2, double_pass=True)
            v2 = simulate(events, 16, 2, double_pass=True,
                          semantics="v2")
            assert (paper.hits, paper.misses) == (v2.hits, v2.misses)


class TestDeterminism:
    def test_simulations_are_reproducible(self):
        keys = [(op, 1) for op in range(64)]
        events = _synthetic(keys, repeat=3)
        a = simulate_itlb(events, 32, 2)
        b = simulate_itlb(events, 32, 2)
        assert a.hits == b.hits and a.misses == b.misses

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)),
                    min_size=10, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, key_list):
        events = _synthetic(key_list, repeat=2)
        stats = simulate_itlb(events, 16, 2, warmup_fraction=0.25)
        assert stats.hits + stats.misses == stats.accesses
        assert 0.0 <= stats.hit_ratio <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=10, max_size=300))
    def test_infinite_cache_misses_equal_footprint(self, address_list):
        events = [TraceEvent(a, 1, 1) for a in address_list]
        stats = simulate_icache(events, 4096, "full", warmup_fraction=0.0)
        assert stats.misses == len(set(address_list))
