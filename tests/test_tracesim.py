"""Tests for the trace-driven cache simulator (repro.trace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    ascii_plot,
    simulate_icache,
    simulate_itlb,
    sweep_icache,
    sweep_itlb,
)
from repro.trace.events import (
    TraceEvent,
    addresses,
    dispatched_only,
    split_warmup,
)
from repro.trace.workloads import monomorphic_trace


def _synthetic(keys, repeat=10):
    """A trace touching the given (opcode, class) keys round-robin."""
    events = []
    for r in range(repeat):
        for index, (opcode, cls) in enumerate(keys):
            events.append(TraceEvent(index, opcode, cls))
    return events


class TestTraceEvents:
    def test_itlb_key(self):
        event = TraceEvent(10, 5, 7)
        assert event.itlb_key == (5, (7,))

    def test_split_warmup(self):
        events = [TraceEvent(i, 1, 1) for i in range(100)]
        warm, measure = split_warmup(events, 0.25)
        assert len(warm) == 25
        assert len(measure) == 75

    def test_split_warmup_validation(self):
        with pytest.raises(ValueError):
            split_warmup([], 1.5)

    def test_dispatched_only(self):
        events = [TraceEvent(0, 1, 1, dispatched=True),
                  TraceEvent(1, 2, 1, dispatched=False)]
        assert [e.opcode for e in dispatched_only(events)] == [1]

    def test_addresses(self):
        events = [TraceEvent(3, 1, 1), TraceEvent(9, 1, 1)]
        assert list(addresses(events)) == [3, 9]


class TestSimulateITLB:
    def test_monomorphic_trace_is_all_hits(self):
        events = monomorphic_trace(1000)
        stats = simulate_itlb(events, 8, 2, warmup_fraction=0.1)
        assert stats.hit_ratio == 1.0

    def test_small_cache_thrashes_many_keys(self):
        keys = [(op, 1) for op in range(100)]
        events = _synthetic(keys, repeat=5)
        small = simulate_itlb(events, 8, 2, warmup_fraction=0.0)
        large = simulate_itlb(events, 128, 2, warmup_fraction=0.0)
        assert small.hit_ratio < large.hit_ratio

    def test_double_pass_removes_compulsory_misses(self):
        keys = [(op, 1) for op in range(50)]
        events = _synthetic(keys, repeat=2)
        single = simulate_itlb(events, 128, 2, warmup_fraction=0.0)
        double = simulate_itlb(events, 128, 2, double_pass=True)
        assert double.hit_ratio == 1.0
        assert single.hit_ratio < 1.0

    def test_dispatched_filter(self):
        events = [TraceEvent(i, 1, 1, dispatched=(i % 2 == 0))
                  for i in range(100)]
        stats = simulate_itlb(events, 8, 2, warmup_fraction=0.0)
        assert stats.accesses == 50

    def test_warmup_excluded_from_stats(self):
        events = [TraceEvent(i, i, 1) for i in range(100)]
        stats = simulate_itlb(events, 256, 2, warmup_fraction=0.5)
        assert stats.accesses == 50


class TestSimulateICache:
    def test_loop_reuse(self):
        events = [TraceEvent(i % 16, 1, 1) for i in range(1000)]
        stats = simulate_icache(events, 64, 2, warmup_fraction=0.1)
        assert stats.hit_ratio == 1.0

    def test_streaming_never_hits(self):
        events = [TraceEvent(i, 1, 1) for i in range(1000)]
        stats = simulate_icache(events, 64, 2, warmup_fraction=0.0)
        assert stats.hit_ratio == 0.0

    def test_line_words_capture_spatial_locality(self):
        events = [TraceEvent(i, 1, 1) for i in range(1024)]
        no_lines = simulate_icache(events, 64, 2, line_words=1,
                                   warmup_fraction=0.0)
        lines = simulate_icache(events, 64, 2, line_words=8,
                                warmup_fraction=0.0)
        assert lines.hit_ratio > no_lines.hit_ratio


class TestSweeps:
    def _events(self):
        keys = [(op, cls) for op in range(20) for cls in range(4)]
        return _synthetic(keys, repeat=4)

    def test_sweep_shape(self):
        result = sweep_itlb(self._events(), sizes=(8, 32, 128),
                            associativities=(1, 2))
        assert set(result.ratios) == {1, 2}
        assert set(result.ratios[1]) == {8, 32, 128}

    def test_hit_ratio_monotone_in_size_full_assoc(self):
        events = self._events()
        result = sweep_itlb(events, sizes=(8, 16, 32, 64, 128),
                            associativities=("full",),
                            warmup_fraction=0.0)
        ratios = [result.ratio("full", s) for s in (8, 16, 32, 64, 128)]
        assert ratios == sorted(ratios)

    def test_smallest_size_reaching(self):
        events = _synthetic([(op, 1) for op in range(4)], repeat=20)
        result = sweep_itlb(events, sizes=(8, 128),
                            associativities=(2,), double_pass=True)
        assert result.smallest_size_reaching(0.99, 2) == 8
        assert result.smallest_size_reaching(1.1, 2) is None

    def test_table_renders(self):
        result = sweep_itlb(self._events(), sizes=(8, 16),
                            associativities=(1, 2))
        table = result.table()
        assert "1-way" in table and "2-way" in table
        assert "16" in table

    def test_icache_sweep(self):
        result = sweep_icache(self._events(), sizes=(8, 64),
                              associativities=(1,))
        assert 0.0 <= result.ratio(1, 8) <= 1.0

    def test_ascii_plot(self):
        result = sweep_itlb(self._events(), sizes=PAPER_SIZES,
                            associativities=PAPER_ASSOCIATIVITIES)
        plot = ascii_plot(result)
        assert "legend" in plot
        assert plot.count("\n") > 10


class TestDeterminism:
    def test_simulations_are_reproducible(self):
        keys = [(op, 1) for op in range(64)]
        events = _synthetic(keys, repeat=3)
        a = simulate_itlb(events, 32, 2)
        b = simulate_itlb(events, 32, 2)
        assert a.hits == b.hits and a.misses == b.misses

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)),
                    min_size=10, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, key_list):
        events = _synthetic(key_list, repeat=2)
        stats = simulate_itlb(events, 16, 2, warmup_fraction=0.25)
        assert stats.hits + stats.misses == stats.accesses
        assert 0.0 <= stats.hit_ratio <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=10, max_size=300))
    def test_infinite_cache_misses_equal_footprint(self, address_list):
        events = [TraceEvent(a, 1, 1) for a in address_list]
        stats = simulate_icache(events, 4096, "full", warmup_fraction=0.0)
        assert stats.misses == len(set(address_list))
