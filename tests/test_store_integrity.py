"""Payload-v3 integrity: CRC fuzzing, quarantine, and store.verify.

The satellite requirement: for a valid payload, *every* single-bit
flip and *every* truncation must be detected -- either as a
:class:`~repro.errors.PayloadFormatError` (the damage hit the magic
or version, so the bytes no longer claim to be a current payload; a
clean miss) or as a :class:`~repro.errors.StoreCorruption` (a
recognized payload failed its length or CRC32 checks; quarantined).
No damaged payload may ever silently decode.
"""

import json

import pytest

from repro import faults
from repro.errors import PayloadFormatError, StoreCorruption
from repro.faults import FaultPlan
from repro.trace.columnar import FORMAT_VERSION, Trace
from repro.trace.events import TraceEvent
from repro.workloads.spec import WorkloadSpec
from repro.workloads.store import QUARANTINE_DIR, TraceStore


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    yield
    faults.install(None)


def _events(n=17):
    return [TraceEvent((i * 37) % 251 - 17, i % 9, (i * 5) % 11,
                       bool(i % 3)) for i in range(n)]


def _spec(counter, name="synthetic"):
    def build(length=32):
        counter["runs"] += 1
        return [TraceEvent(i % 8, 1 + i % 3, i % 5, bool(i % 2))
                for i in range(length)]
    return WorkloadSpec(name=name, description="test-only",
                        build=build, defaults={"length": 32})


class TestPayloadFuzz:
    """Exhaustive single-bit-flip and truncation detection."""

    def test_clean_round_trip(self):
        events = _events()
        blob = TraceStore.serialize(events)
        assert blob[4] == FORMAT_VERSION == 3
        assert TraceStore.deserialize(blob) == events

    def test_every_single_bit_flip_is_detected(self):
        blob = bytearray(TraceStore.serialize(_events()))
        for offset in range(len(blob)):
            for bit in range(8):
                blob[offset] ^= 1 << bit
                with pytest.raises((PayloadFormatError,
                                    StoreCorruption)):
                    TraceStore.deserialize(bytes(blob))
                blob[offset] ^= 1 << bit  # restore

    def test_every_truncation_is_detected(self):
        blob = TraceStore.serialize(_events())
        for length in range(len(blob)):
            with pytest.raises((PayloadFormatError, StoreCorruption)):
                TraceStore.deserialize(blob[:length])

    def test_every_extension_is_detected(self):
        blob = TraceStore.serialize(_events())
        for extra in (b"\x00", b"junk", blob):
            with pytest.raises(StoreCorruption):
                TraceStore.deserialize(blob + extra)

    def test_empty_trace_round_trips_and_fuzzes_clean(self):
        blob = bytearray(TraceStore.serialize([]))
        assert len(TraceStore.deserialize(bytes(blob))) == 0
        for offset in range(len(blob)):
            blob[offset] ^= 0xFF
            with pytest.raises((PayloadFormatError, StoreCorruption)):
                TraceStore.deserialize(bytes(blob))
            blob[offset] ^= 0xFF


class TestLegacyFormats:
    """v1/v2 files (and foreign bytes) are clean misses, never
    corruption and never a misread."""

    def _v2_blob(self, n=8):
        # The PR-5 layout: header + three raw int columns + bitset,
        # no CRC trailers.
        import zlib  # noqa: F401 (documentation: v2 had no CRCs)
        columns = b"\x00" * (3 * 4 * n)
        bits = b"\x00" * ((n + 7) >> 3)
        return b"RTRC\x02" + n.to_bytes(4, "little") + columns + bits

    @pytest.mark.parametrize("blob", [
        b"",
        b"RT",
        b"not a trace at all",
        b"RTRC\x01" + b"\x00" * 260,              # v1 array-of-structs
        b"RTRC\x63" + b"\x00" * 64,               # future version
    ], ids=["empty", "short", "foreign", "v1", "future"])
    def test_non_v3_bytes_are_format_errors(self, blob):
        with pytest.raises(PayloadFormatError):
            TraceStore.deserialize(blob)

    def test_v2_payload_is_a_format_error(self):
        with pytest.raises(PayloadFormatError):
            TraceStore.deserialize(self._v2_blob())

    def test_legacy_file_is_a_clean_miss_no_quarantine(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        path = store.path_for(spec, spec.resolve())
        store.load(spec)
        path.write_bytes(self._v2_blob())
        fresh = TraceStore(tmp_path)
        assert len(fresh.load(spec)) == 32
        assert counter["runs"] == 2          # regenerated in place
        assert fresh.quarantined == 0
        assert not (tmp_path / QUARANTINE_DIR).exists()


class TestQuarantine:
    def _corrupt_stored(self, tmp_path, counter):
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        path = store.path_for(spec, spec.resolve())
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        return spec, path

    def test_corrupt_payload_is_quarantined_and_regenerated(
            self, tmp_path):
        counter = {"runs": 0}
        spec, path = self._corrupt_stored(tmp_path, counter)
        fresh = TraceStore(tmp_path)
        events = fresh.load(spec)
        assert len(events) == 32 and counter["runs"] == 2
        assert fresh.quarantined == 1
        # The corrupt bytes were preserved as evidence, with a
        # reason sidecar, and the live path regenerated.
        moved = tmp_path / QUARANTINE_DIR / path.name
        assert moved.exists()
        reason = json.loads(
            (tmp_path / QUARANTINE_DIR /
             f"{path.name}.reason.json").read_text())
        assert "CRC32" in reason["reason"] or "expected" in \
            reason["reason"]
        assert path.exists()  # regenerated, valid again
        assert TraceStore(tmp_path).load(spec) == events

    def test_quarantined_files_are_not_entries(self, tmp_path):
        counter = {"runs": 0}
        spec, path = self._corrupt_stored(tmp_path, counter)
        fresh = TraceStore(tmp_path)
        fresh.load(spec)
        names = [entry["workload"] for entry in
                 TraceStore(tmp_path).entries()]
        assert names == ["synthetic"]  # the regenerated one only

    def test_verify_audits_and_quarantines(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        good = _spec(counter, name="good")
        bad = _spec(counter, name="bad")
        store.load(good)
        store.load(bad)
        bad_path = store.path_for(bad, bad.resolve())
        blob = bytearray(bad_path.read_bytes())
        blob[-1] ^= 0x01
        bad_path.write_bytes(bytes(blob))
        (tmp_path / "stale-0000.trace").write_bytes(
            b"RTRC\x02" + b"\x00" * 32)
        report = TraceStore(tmp_path).verify()
        assert report["checked"] == 3
        assert report["ok"] == 1
        assert report["stale"] == ["stale-0000.trace"]
        assert [name for name, _ in report["corrupt"]] == \
            [bad_path.name]
        assert (tmp_path / QUARANTINE_DIR / bad_path.name).exists()

    def test_trace_verify_cli(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        assert cli_main(["trace", "--verify",
                         "--trace-dir", str(tmp_path)]) == 0
        assert "corrupt:     0" in capsys.readouterr().out
        path = store.path_for(spec, spec.resolve())
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0x80
        path.write_bytes(bytes(blob))
        assert cli_main(["trace", "--verify",
                         "--trace-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "quarantine" in out and path.name in out
        # The audit moved it; a second audit is clean.
        assert cli_main(["trace", "--verify",
                         "--trace-dir", str(tmp_path)]) == 0

    def test_trace_cli_requires_name_without_verify(self, tmp_path,
                                                    capsys):
        from repro.cli import main as cli_main
        assert cli_main(["trace", "--trace-dir", str(tmp_path)]) == 2


class TestNarrowedMissHandling:
    """The old ``except (OSError, ValueError)`` swallowed *any*
    ValueError as a miss; only payload-decode failures may be."""

    def test_programming_errors_propagate(self, tmp_path,
                                          monkeypatch):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        fresh = TraceStore(tmp_path)

        def buggy(blob):
            raise ValueError("a genuine bug, not a decode failure")

        monkeypatch.setattr(TraceStore, "deserialize",
                            staticmethod(buggy))
        with pytest.raises(ValueError, match="genuine bug"):
            fresh.load(spec)

    def test_unreadable_file_is_still_a_miss(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        path = store.path_for(spec, spec.resolve())
        path.unlink()
        path.mkdir()  # read_bytes -> IsADirectoryError (an OSError)
        fresh = TraceStore(tmp_path)
        # Regeneration succeeds in memory even though persisting
        # under the directory-shaped path cannot.
        assert len(fresh.load(spec)) == 32
        assert counter["runs"] == 2


class TestInjectionSites:
    """The store's chaos hooks: store.read / store.write."""

    def test_injected_read_corruption_quarantines_and_recovers(
            self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        baseline = TraceStore(tmp_path)
        baseline.load(spec)
        clean = baseline.path_for(spec, spec.resolve()).read_bytes()
        faults.install(FaultPlan.parse("store.read:corrupt:times=1",
                                       seed=11))
        fresh = TraceStore(tmp_path)
        events = fresh.load(spec)
        # The corrupted read was detected, the (actually clean) file
        # quarantined, and the trace regenerated byte-identically.
        assert fresh.quarantined == 1
        assert counter["runs"] == 2
        assert TraceStore.serialize(events) == clean

    def test_injected_read_io_error_is_a_miss(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        TraceStore(tmp_path).load(spec)
        faults.install(FaultPlan.parse("store.read:io-error:times=1",
                                       seed=11))
        fresh = TraceStore(tmp_path)
        assert len(fresh.load(spec)) == 32
        assert counter["runs"] == 2
        assert fresh.quarantined == 0

    def test_injected_write_corruption_is_caught_on_next_read(
            self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        faults.install(FaultPlan.parse("store.write:corrupt:times=1",
                                       seed=11))
        first = TraceStore(tmp_path)
        events = first.load(spec)       # written corrupt behind us
        assert counter["runs"] == 1
        faults.install(None)
        fresh = TraceStore(tmp_path)
        recovered = fresh.load(spec)
        assert fresh.quarantined == 1   # detected, never misread
        assert counter["runs"] == 2
        assert recovered == events


class TestPickleStillWorks:
    def test_trace_pickle_round_trip_checksummed(self):
        import pickle
        trace = Trace.from_events(_events())
        clone = pickle.loads(pickle.dumps(trace))
        assert clone == trace
