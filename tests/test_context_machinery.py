"""Tests for contexts, the context pool and the context cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import (
    ARG0_SLOT,
    ARG1_SLOT,
    CONTEXT_WORDS,
    ContextPool,
    FrameSizeHistogram,
    HEADER_WORDS,
    RCP_SLOT,
    RIP_SLOT,
    operand_slot,
)
from repro.core.context_cache import ContextCache
from repro.errors import FreeListExhausted, ReproError
from repro.memory.fpa import address_format
from repro.memory.mmu import MMU
from repro.memory.tags import Word
from repro.objects.heap import ObjectHeap
from repro.objects.model import ClassRegistry


class TestLayout:
    def test_figure_8_slots(self):
        assert RCP_SLOT == 0
        assert RIP_SLOT == 1
        assert ARG0_SLOT == 2
        assert ARG1_SLOT == 3

    def test_operand_slot_skips_header(self):
        assert operand_slot(0) == ARG0_SLOT
        assert operand_slot(1) == ARG1_SLOT
        assert operand_slot(29) == 31

    def test_context_is_32_words(self):
        assert CONTEXT_WORDS == 32
        assert HEADER_WORDS + 30 == CONTEXT_WORDS


@pytest.fixture
def pool():
    mmu = MMU(address_format(36), arena_words=1 << 18)
    heap = ObjectHeap(mmu, team=0)
    registry = ClassRegistry()
    context_class = registry.define_class("Context",
                                          instance_size=CONTEXT_WORDS)
    return ContextPool(heap, context_class, batch=4)


class TestContextPool:
    def test_allocate_refills_in_batches(self, pool):
        pool.allocate()
        assert pool.stats.refills == 1
        assert pool.free_count == 3

    def test_free_and_reuse(self, pool):
        address = pool.allocate()
        pool.free(address)
        assert pool.allocate() == address

    def test_high_water(self, pool):
        addresses = [pool.allocate() for _ in range(6)]
        assert pool.stats.high_water == 6
        for address in addresses:
            pool.free(address)
        assert pool.live_count == 0
        assert pool.stats.freed == 6

    def test_limit(self):
        mmu = MMU(address_format(36), arena_words=1 << 18)
        heap = ObjectHeap(mmu, team=0)
        registry = ClassRegistry()
        cls = registry.define_class("Context", instance_size=CONTEXT_WORDS)
        pool = ContextPool(heap, cls, batch=2, limit=4)
        for _ in range(4):
            pool.allocate()
        with pytest.raises(FreeListExhausted):
            pool.allocate()

    def test_contexts_counted_by_heap(self, pool):
        pool.allocate()
        assert pool.heap.stats.allocations["context"] == 4  # one batch


class TestFrameSizeHistogram:
    def test_fraction_fitting(self):
        histogram = FrameSizeHistogram()
        for size in (8, 10, 12, 40):
            histogram.record(size)
        assert histogram.fraction_fitting(32) == 0.75

    def test_percentile(self):
        histogram = FrameSizeHistogram()
        for size in (4, 8, 16, 32):
            histogram.record(size)
        assert histogram.percentile(0.5) == 8
        assert histogram.percentile(1.0) == 32

    def test_empty(self):
        histogram = FrameSizeHistogram()
        assert histogram.fraction_fitting() == 0.0
        assert histogram.percentile(0.5) == 0


class _FakeMemory:
    """Backing store for context cache tests."""

    def __init__(self):
        self.blocks = {}

    def writer(self, base, words):
        self.blocks[base] = list(words)

    def loader(self, base):
        return list(self.blocks.get(base,
                                    [Word.uninitialized()] * CONTEXT_WORDS))


@pytest.fixture
def cache_memory():
    memory = _FakeMemory()
    cache = ContextCache(memory.writer, memory.loader, num_blocks=8,
                         reserve=2)
    return cache, memory


class TestContextCacheAllocation:
    def test_allocate_next_clears(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)
        assert cache.next is not None
        for i in range(CONTEXT_WORDS):
            assert cache.read_next(i).is_uninitialized
        assert cache.stats.block_clears == 1

    def test_double_allocate_rejected(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)
        with pytest.raises(ReproError):
            cache.allocate_next(32)

    def test_fast_path_read_write(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)
        cache.write_next(5, Word.small_integer(9))
        assert cache.read_next(5).value == 9
        assert cache.stats.fast_writes == 1
        assert cache.stats.fast_reads == 1

    def test_no_current_raises(self, cache_memory):
        cache, _memory = cache_memory
        with pytest.raises(ReproError):
            cache.read_current(0)


class TestCallReturnTransitions:
    def test_call_moves_next_to_current(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)
        block = cache.next
        cache.on_call()
        assert cache.current == block
        assert cache.next is None

    def test_return_reuses_current_as_next(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)       # caller context at base 0
        cache.on_call()
        cache.allocate_next(32)      # callee's next
        caller_block = cache.current
        cache.on_call()              # now running in base-32 context
        returning_block = cache.current
        hit = cache.on_return(0, reuse_current_as_next=True)
        assert hit is True
        assert cache.current == caller_block
        assert cache.next == returning_block

    def test_return_without_reuse(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(0)
        cache.on_call()
        cache.allocate_next(32)
        cache.on_call()
        cache.on_return(0, reuse_current_as_next=False)
        assert cache.next is None
        assert cache.is_resident(32)   # captured context stays cached

    def test_return_faults_evicted_caller(self, cache_memory):
        cache, memory = cache_memory
        cache.allocate_next(0)
        cache.on_call()
        cache.write_current(4, Word.small_integer(1))
        # Fill the cache far past capacity so base 0 gets retired.
        for base in range(32, 32 * 20, 32):
            if cache.next is None:
                cache.allocate_next(base)
                cache.on_call()
        assert not cache.is_resident(0)
        assert cache.stats.copybacks > 0
        hit = cache.on_return(0, reuse_current_as_next=True)
        assert hit is False
        assert cache.stats.faults == 1
        assert cache.read_current(4).value == 1   # restored image


class TestCopyBack:
    def test_reserve_maintained(self, cache_memory):
        cache, _memory = cache_memory
        for base in range(0, 32 * 30, 32):
            if cache.next is None:
                cache.allocate_next(base)
                cache.on_call()
            assert cache.free_count >= 0
        # After every allocation the engine keeps the reserve.
        assert cache.free_count >= cache.reserve - 1

    def test_dirty_blocks_written_back(self, cache_memory):
        cache, memory = cache_memory
        cache.allocate_next(0)
        cache.write_next(3, Word.small_integer(7))
        cache.on_call()
        for base in range(32, 32 * 20, 32):
            cache.allocate_next(base)
            cache.on_call()
        assert 0 in memory.blocks
        assert memory.blocks[0][3].value == 7

    def test_release_frees_without_writeback(self, cache_memory):
        cache, memory = cache_memory
        cache.allocate_next(0)
        cache.write_next(0, Word.small_integer(1))
        cache.release(0)
        assert 0 not in memory.blocks
        assert cache.next is None
        assert not cache.is_resident(0)

    def test_flush_all(self, cache_memory):
        cache, memory = cache_memory
        cache.allocate_next(0)
        cache.write_next(1, Word.small_integer(5))
        cache.flush_all()
        assert memory.blocks[0][1].value == 5
        assert cache.is_resident(0)    # flush writes back, keeps resident


class TestAbsoluteAccess:
    def test_directory_match(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(64)
        cache.write_next(2, Word.small_integer(3))
        assert cache.read_absolute(64, 2).value == 3
        assert cache.stats.directory_hits == 1

    def test_directory_miss(self, cache_memory):
        cache, _memory = cache_memory
        assert cache.read_absolute(999, 0) is None
        assert cache.stats.directory_misses == 1

    def test_write_absolute(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(64)
        assert cache.write_absolute(64, 7, Word.small_integer(2)) is True
        assert cache.read_next(7).value == 2
        assert cache.write_absolute(128, 0, Word.small_integer(2)) is False

    def test_rebind_next(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(64)
        cache.write_next(4, Word.small_integer(9))
        cache.rebind_next(64, 96)
        assert cache.is_resident(96)
        assert not cache.is_resident(64)
        assert cache.read_absolute(96, 4).value == 9

    def test_image_of(self, cache_memory):
        cache, _memory = cache_memory
        cache.allocate_next(64)
        image = cache.image_of(64)
        assert len(image) == CONTEXT_WORDS
        assert cache.image_of(128) is None


class TestGeometry:
    def test_minimum_blocks(self):
        memory = _FakeMemory()
        with pytest.raises(ReproError):
            ContextCache(memory.writer, memory.loader, num_blocks=2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=120))
    def test_never_loses_current_or_next(self, calls):
        """Random call/return sequences keep the two vectors valid.

        Mirrors the machine's protocol exactly: a call consumes the
        next context and allocates a fresh one; a return releases the
        unused next and reuses the returning context as next.
        """
        memory = _FakeMemory()
        cache = ContextCache(memory.writer, memory.loader, num_blocks=6)
        base = 0
        cache.allocate_next(base)          # main's context
        cache.on_call()
        stack = [base]
        base += 32
        cache.allocate_next(base)          # main's next
        next_base = base
        for deeper in calls:
            if deeper or len(stack) == 1:
                cache.on_call()
                stack.append(next_base)
                base += 32
                cache.allocate_next(base)
                next_base = base
            else:
                returning = stack.pop()
                cache.release(next_base)   # the unused NCP
                cache.on_return(stack[-1], reuse_current_as_next=True)
                next_base = returning
            assert cache.current is not None
            assert cache.next is not None
