"""Tests for the COM assembler (repro.core.assembler)."""

import pytest

from repro.core.assembler import Assembler, load_program, parse_program
from repro.core.constants import ConstantTable
from repro.core.encoding import Instruction
from repro.core.isa import Op, OpcodeTable
from repro.core.machine import COMMachine
from repro.core.operands import Mode, Operand, Space
from repro.errors import AssemblerError


@pytest.fixture
def assembler():
    return Assembler(OpcodeTable(), ConstantTable())


def one(assembler, line):
    instructions = assembler.assemble_lines([line])
    assert len(instructions) == 1
    return instructions[0]


class TestOperandResolution:
    def test_context_slots(self, assembler):
        assert assembler.operand("c3") == Operand.current(3)
        assert assembler.operand("n7") == Operand.next(7)

    def test_literals_interned(self, assembler):
        operand = assembler.operand("42")
        assert operand.mode is Mode.CONSTANT
        assert assembler.constants.get(operand.offset).value == 42

    def test_negative_and_float_literals(self, assembler):
        assert assembler.constants.get(
            assembler.operand("-3").offset).value == -3
        assert assembler.constants.get(
            assembler.operand("2.5").offset).value == 2.5

    def test_specials(self, assembler):
        for text, value in (("true", "true"), ("false", "false"),
                            ("nil", "nil"), ("#foo", "foo")):
            operand = assembler.operand(text)
            assert assembler.constants.get(operand.offset).value == value

    def test_unknown_operand(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.operand("wat")


class TestStatementForms:
    def test_move(self, assembler):
        inst = one(assembler, "c2 = c3")
        assert inst.opcode == int(Op.MOVE)
        assert inst.operands[0] == Operand.current(2)
        assert inst.operands[1] == Operand.current(3)

    def test_binary(self, assembler):
        inst = one(assembler, "c2 = c3 + c4")
        assert inst.opcode == int(Op.ADD)

    def test_user_selector_interned(self, assembler):
        inst = one(assembler, "c2 = c3 frob: c4")
        assert assembler.opcodes.selector_of(inst.opcode) == "frob:"

    def test_unary(self, assembler):
        assert one(assembler, "c2 = neg c3").opcode == int(Op.NEG)
        assert one(assembler, "c2 = tag c3").opcode == int(Op.TAG)

    def test_movea(self, assembler):
        inst = one(assembler, "c2 = & c3")
        assert inst.opcode == int(Op.MOVEA)

    def test_at(self, assembler):
        inst = one(assembler, "c2 = c3 [ c4 ]")
        assert inst.opcode == int(Op.AT)
        assert inst.operands[1] == Operand.current(3)

    def test_atput(self, assembler):
        inst = one(assembler, "c3 [ c4 ] = c2")
        assert inst.opcode == int(Op.ATPUT)
        assert inst.operands[0] == Operand.current(2)   # value

    def test_as(self, assembler):
        assert one(assembler, "c2 = c3 as 1").opcode == int(Op.AS)

    def test_halt(self, assembler):
        inst = one(assembler, "halt")
        assert inst.opcode == int(Op.HALT)
        assert inst.is_zero_operand

    def test_ret_value(self, assembler):
        inst = one(assembler, "ret c4")
        assert inst.returns is True
        assert inst.operands[0] == Operand.current(0)

    def test_bare_ret(self, assembler):
        inst = one(assembler, "ret")
        assert inst.returns is True

    def test_return_marker(self, assembler):
        inst = one(assembler, "c0 = c2 ^")
        assert inst.returns is True

    def test_send(self, assembler):
        inst = one(assembler, "send foo: 2")
        assert inst.is_zero_operand
        assert inst.nargs == 2

    def test_send_too_many_args(self, assembler):
        with pytest.raises(AssemblerError):
            one(assembler, "send foo: 3")

    def test_xfer(self, assembler):
        assert one(assembler, "xfer c2").opcode == int(Op.XFER)

    def test_comments_ignored(self, assembler):
        assert assembler.assemble_lines(["; just a comment", "halt"])

    def test_constant_destination_rejected(self, assembler):
        with pytest.raises(AssemblerError):
            one(assembler, "5 = c2")

    def test_garbage_rejected(self, assembler):
        with pytest.raises(AssemblerError):
            one(assembler, "c2 c3 c4")


class TestLabels:
    def test_forward_jump_uses_fjmp(self, assembler):
        instructions = assembler.assemble_lines([
            "jt c2 end",
            "c3 = 1",
            "end:",
            "halt",
        ])
        assert instructions[0].opcode == int(Op.FJMP)
        disp = assembler.constants.get(instructions[0].operands[2].offset)
        assert disp.value == 1

    def test_backward_jump_uses_rjmp(self, assembler):
        instructions = assembler.assemble_lines([
            "top:",
            "c3 = 1",
            "jt c2 top",
        ])
        assert instructions[1].opcode == int(Op.RJMP)
        disp = assembler.constants.get(instructions[1].operands[2].offset)
        assert disp.value == 2

    def test_jmp_unconditional(self, assembler):
        instructions = assembler.assemble_lines([
            "jmp end", "c2 = 1", "end:", "halt"])
        cond = assembler.constants.get(instructions[0].operands[0].offset)
        assert cond.value == "true"

    def test_undefined_label(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_lines(["jmp nowhere"])

    def test_duplicate_label(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_lines(["x:", "x:", "halt"])


class TestProgramStructure:
    def test_parse_sections(self):
        parsed = parse_program("""
        class Animal
        class Dog < Animal
        method Dog >> bark args=1 frame=8
            ret 1
        main
            halt
        """)
        assert parsed.classes == [("Animal", None), ("Dog", "Animal")]
        assert parsed.methods[0]["selector"] == "bark"
        assert parsed.methods[0]["frame_words"] == 8
        assert parsed.main_lines == ["halt"]

    def test_statement_outside_section(self):
        with pytest.raises(AssemblerError):
            parse_program("c2 = 1")

    def test_missing_main(self):
        machine = COMMachine()
        with pytest.raises(AssemblerError):
            load_program(machine, "method Object >> f args=0\n    ret\n")

    def test_load_program_installs_methods(self):
        machine = COMMachine()
        load_program(machine, """
        method SmallInteger >> double args=1
            c2 = c1 + c1
            ret c2
        main
            halt
        """)
        cls = machine.registry.by_name("SmallInteger")
        assert cls.methods.lookup("double") is not None

    def test_frame_sizes_recorded(self):
        machine = COMMachine()
        load_program(machine, """
        method Object >> f args=0 frame=12
            ret
        main
            halt
        """)
        assert 12 in machine.frame_sizes.counts
