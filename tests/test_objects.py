"""Tests for the object model, heap and GC (repro.objects)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DoesNotUnderstandTrap, ReproError
from repro.memory.fpa import address_format
from repro.memory.mmu import MMU
from repro.memory.tags import Tag, Word
from repro.objects.gc import ContextRecycler, MarkSweepCollector
from repro.objects.heap import ObjectHeap
from repro.objects.model import (
    ClassRegistry,
    DefinedMethod,
    MethodDictionary,
    ObjectClass,
    PrimitiveMethod,
)


class TestMethodDictionary:
    def test_install_lookup(self):
        methods = MethodDictionary()
        method = PrimitiveMethod("+", "arith.add")
        methods.install("+", method)
        assert methods.lookup("+") is method
        assert methods.lookup("-") is None

    def test_replace(self):
        methods = MethodDictionary()
        methods.install("f", PrimitiveMethod("f", "a"))
        methods.install("f", PrimitiveMethod("f", "b"))
        assert methods.lookup("f").unit == "b"
        assert len(methods) == 1

    def test_remove_and_tombstone_probing(self):
        methods = MethodDictionary(capacity=4)
        for name in ("a", "b", "c"):
            methods.install(name, PrimitiveMethod(name, name))
        assert methods.remove("b") is True
        assert methods.remove("b") is False
        # Entries past the tombstone stay reachable.
        assert methods.lookup("a") is not None
        assert methods.lookup("c") is not None
        assert "b" not in methods

    def test_growth(self):
        methods = MethodDictionary(capacity=4)
        for i in range(50):
            methods.install(f"sel{i}", PrimitiveMethod(f"sel{i}", "u"))
        assert len(methods) == 50
        for i in range(50):
            assert methods.lookup(f"sel{i}") is not None

    def test_probe_counting(self):
        methods = MethodDictionary()
        methods.install("x", PrimitiveMethod("x", "u"))
        before = methods.probes
        methods.lookup("x")
        assert methods.probes > before
        assert methods.lookups == 1

    def test_selectors(self):
        methods = MethodDictionary()
        methods.install("a", PrimitiveMethod("a", "u"))
        methods.install("b", PrimitiveMethod("b", "u"))
        assert sorted(methods.selectors()) == ["a", "b"]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from("ixrl"),
                  st.text(alphabet="abcdef", min_size=1, max_size=4)),
        max_size=60))
    def test_matches_dict_semantics(self, operations):
        methods = MethodDictionary(capacity=4)
        reference = {}
        for action, key in operations:
            if action in ("i", "x"):
                method = PrimitiveMethod(key, action)
                methods.install(key, method)
                reference[key] = method
            elif action == "r":
                assert methods.remove(key) == (key in reference)
                reference.pop(key, None)
            else:
                assert methods.lookup(key) is reference.get(key)
        assert len(methods) == len(reference)
        assert sorted(methods.selectors()) == sorted(reference)


class TestClassRegistry:
    def test_primitive_classes_preinstalled(self):
        registry = ClassRegistry()
        assert registry.by_tag(int(Tag.SMALL_INTEGER)).name == "SmallInteger"
        assert registry.by_name("Float").class_tag == int(Tag.FLOAT)

    def test_define_class_assigns_tags(self):
        registry = ClassRegistry()
        a = registry.define_class("A")
        b = registry.define_class("B")
        assert b.class_tag == a.class_tag + 1
        assert a.class_tag >= ClassRegistry.FIRST_USER_TAG

    def test_duplicate_name_rejected(self):
        registry = ClassRegistry()
        registry.define_class("A")
        with pytest.raises(ReproError):
            registry.define_class("A")

    def test_explicit_tag(self):
        registry = ClassRegistry()
        cls = registry.define_class("A", class_tag=100)
        assert cls.class_tag == 100
        with pytest.raises(ReproError):
            registry.define_class("B", class_tag=100)

    def test_ancestry_lookup(self):
        registry = ClassRegistry()
        base = registry.define_class("Base")
        mid = registry.define_class("Mid", base)
        leaf = registry.define_class("Leaf", mid)
        base.define_primitive("root", "u1")
        mid.define_primitive("middle", "u2")
        result = registry.lookup("root", leaf)
        assert result.defining_class is base
        assert result.dictionaries_searched == 3
        assert registry.lookup("middle", leaf).defining_class is mid

    def test_override_shadows_super(self):
        registry = ClassRegistry()
        base = registry.define_class("Base")
        leaf = registry.define_class("Leaf", base)
        base.define_primitive("f", "base-unit")
        leaf.define_primitive("f", "leaf-unit")
        assert registry.lookup("f", leaf).method.unit == "leaf-unit"
        assert registry.lookup("f", base).method.unit == "base-unit"

    def test_dnu(self):
        registry = ClassRegistry()
        cls = registry.define_class("A")
        with pytest.raises(DoesNotUnderstandTrap) as exc:
            registry.lookup("missing", cls)
        assert exc.value.selector == "missing"
        assert registry.failed_lookups == 1

    def test_is_kind_of(self):
        registry = ClassRegistry()
        base = registry.define_class("Base")
        leaf = registry.define_class("Leaf", base)
        assert leaf.is_kind_of(base)
        assert not base.is_kind_of(leaf)


@pytest.fixture
def heap():
    mmu = MMU(address_format(36), arena_words=1 << 16)
    return ObjectHeap(mmu, team=0)


@pytest.fixture
def point_class():
    registry = ClassRegistry()
    return registry.define_class("Point", instance_size=2)


class TestObjectHeap:
    def test_allocate_and_fields(self, heap, point_class):
        address = heap.allocate(point_class)
        heap.store(address, 0, Word.small_integer(3))
        heap.store(address, 1, Word.small_integer(4))
        assert heap.load(address, 0).value == 3
        assert heap.load(address, 1).value == 4

    def test_class_tag_recorded(self, heap, point_class):
        address = heap.allocate(point_class)
        assert heap.class_tag_of(address) == point_class.class_tag

    def test_pointer_word(self, heap, point_class):
        address = heap.allocate(point_class)
        pointer = heap.pointer_to(address)
        assert pointer.is_pointer
        assert pointer.class_tag == point_class.class_tag
        assert pointer.value == address.packed

    def test_allocation_stats_by_kind(self, heap, point_class):
        heap.allocate(point_class)
        heap.allocate_context(point_class, 32)
        heap.allocate_context(point_class, 32)
        stats = heap.stats
        assert stats.allocations["object"] == 1
        assert stats.allocations["context"] == 2
        assert stats.total_allocations == 3

    def test_allocation_fraction(self, heap, point_class):
        for _ in range(3):
            address = heap.allocate_context(point_class, 32)
            heap.free(address)
        heap.allocate(point_class)
        # 3 allocs + 3 frees context, 1 object alloc => 6/7.
        assert heap.stats.allocation_fraction("context") == pytest.approx(6 / 7)

    def test_free_forgets_kind(self, heap, point_class):
        address = heap.allocate_context(point_class, 32)
        heap.free(address)
        assert len(heap) == 0


class TestMarkSweep:
    def _setup(self):
        mmu = MMU(address_format(36), arena_words=1 << 16)
        heap = ObjectHeap(mmu, team=0)
        registry = ClassRegistry()
        cls = registry.define_class("Node", instance_size=2)
        collector = MarkSweepCollector(heap)
        return heap, cls, collector

    def test_unreachable_swept(self):
        heap, cls, collector = self._setup()
        heap.allocate(cls)
        heap.allocate(cls)
        assert collector.collect(roots=[]) == 2
        assert len(heap) == 0

    def test_roots_survive(self):
        heap, cls, collector = self._setup()
        a = heap.allocate(cls)
        heap.allocate(cls)
        assert collector.collect(roots=[a.packed]) == 1
        assert list(heap.live_objects()) == [a.packed]

    def test_pointer_chain_marked(self):
        heap, cls, collector = self._setup()
        a = heap.allocate(cls)
        b = heap.allocate(cls)
        c = heap.allocate(cls)
        heap.store(a, 0, heap.pointer_to(b))
        heap.store(b, 0, heap.pointer_to(c))
        dead = heap.allocate(cls)
        assert collector.collect(roots=[a.packed]) == 1
        assert set(heap.live_objects()) == {a.packed, b.packed, c.packed}

    def test_cycles_collected(self):
        heap, cls, collector = self._setup()
        a = heap.allocate(cls)
        b = heap.allocate(cls)
        heap.store(a, 0, heap.pointer_to(b))
        heap.store(b, 0, heap.pointer_to(a))
        assert collector.collect(roots=[]) == 2

    def test_extra_roots_pin(self):
        heap, cls, collector = self._setup()
        a = heap.allocate(cls)
        collector.add_root(a)
        assert collector.collect(roots=[]) == 0
        collector.remove_root(a)
        assert collector.collect(roots=[]) == 1

    def test_context_sweeps_counted(self):
        heap, cls, collector = self._setup()
        heap.allocate_context(cls, 32)
        collector.collect(roots=[])
        assert collector.stats.contexts_swept == 1


class TestContextRecycler:
    def test_lifo_path(self):
        recycler = ContextRecycler()
        recycler.note_allocation(1)
        assert recycler.on_return(1) is True
        assert recycler.stats.lifo_fraction == 1.0

    def test_captured_path(self):
        recycler = ContextRecycler()
        recycler.note_allocation(1)
        recycler.note_capture(1)
        assert recycler.on_return(1) is False
        assert recycler.stats.returned_non_lifo == 1
        assert recycler.stats.lifo_fraction == 0.0

    def test_gc_free(self):
        recycler = ContextRecycler()
        recycler.note_capture(1)
        recycler.on_gc_free(1)
        assert recycler.stats.freed_by_gc == 1
        assert not recycler.is_captured(1)

    def test_mixed_fraction(self):
        recycler = ContextRecycler()
        for packed in range(10):
            recycler.note_allocation(packed)
        recycler.note_capture(3)
        recycler.note_capture(7)
        for packed in range(10):
            recycler.on_return(packed)
        assert recycler.stats.lifo_fraction == pytest.approx(0.8)
