"""The trace library PR's acceptance surface.

Pins the tentpole and its satellites end to end:

* sharded layout -- writes land under ``shards/<key[:2]>/``, legacy
  flat payloads stay readable unmigrated, ``migrate`` adopts them
  byte-identically, and a torn/corrupt/version-skewed manifest is
  never fatal (rebuilt from the payloads, which are the truth);
* sidecar audit -- ``store.verify()`` REPORTS params/key mismatches
  (stale metadata) without quarantining the healthy payload;
* mmap zero-copy loading -- loads are views over the mapped payload,
  lifetime is typed (``MappedBufferClosed`` after close, pre-close
  views and copies survive), and a >1M-event trace round-trips;
* the big-endian fallback of ``from_buffer``/``from_bytes`` never
  byte-swaps the dispatched bitset (it is byte-order independent);
* the sweep-result cache -- round-trips byte-identical surfaces,
  treats corruption as a clean miss, evicts LRU by byte budget, can
  be disabled by environment, and lets a repeated harness run replay
  zero references;
* the new fault-injection sites (``store.manifest``,
  ``store.result_cache``) degrade cleanly under chaos.
"""

import io
import json
import os

import pytest

from repro import faults, telemetry
from repro.cli import main as cli_main
from repro.errors import MappedBufferClosed, StoreCorruption
from repro.faults import FaultPlan
from repro.sweep import SweepSpec, result_cache_key, run_sweep
from repro.sweep.runner import _RESULT_CACHES
from repro.trace.columnar import MappedTrace, Trace, TraceBuilder
from repro.trace.events import TraceEvent
from repro.workloads.library import (
    MANIFEST_NAME,
    SHARDS_DIR,
    ResultCache,
    TraceLibrary,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.store import QUARANTINE_DIR, TraceStore


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_RESULT_CACHE_BYTES", raising=False)
    monkeypatch.delenv("REPRO_STORE_MMAP", raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    monkeypatch.setattr(telemetry, "_RECORDER", None)
    monkeypatch.setattr(telemetry, "_SOURCE", None)
    _RESULT_CACHES.clear()
    yield
    faults.install(None)
    telemetry.install(None)
    _RESULT_CACHES.clear()


def _spec(counter, name="synthetic"):
    def build(length=64):
        counter["runs"] += 1
        return [TraceEvent((i * 37) % 251 - 17, 1 + i % 7, i % 5,
                           bool(i % 2)) for i in range(length)]
    return WorkloadSpec(name=name, description="test-only",
                        build=build, defaults={"length": 64})


# -- sharded layout / manifest --------------------------------------------

class TestShardedLayout:
    def test_write_lands_in_shard_with_manifest(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        spec = _spec(counter)
        store.load(spec)
        key = store.trace_key(spec)
        payload = tmp_path / SHARDS_DIR / key[:2] / \
            f"synthetic-{key}.trace"
        assert payload.is_file()
        assert payload.with_suffix(".json").is_file()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert key in manifest["entries"]
        entry = manifest["entries"][key]
        assert entry["bytes"] == payload.stat().st_size
        assert entry["shard"] == key[:2]
        catalog = store.library.read_catalog(key[:2])
        assert key in catalog["entries"]

    def test_flat_legacy_payload_reads_without_migration(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        sharded = TraceStore(tmp_path)
        events = sharded.load(spec)
        key = sharded.trace_key(spec)
        # Demote the payload to the PR-5 flat layout by hand.
        src = sharded.path_for(spec, spec.resolve())
        flat = tmp_path / src.name
        os.replace(src, flat)
        os.replace(src.with_suffix(".json"), flat.with_suffix(".json"))

        store = TraceStore(tmp_path)
        loaded = store.load(spec)
        assert counter["runs"] == 1  # read, not regenerated
        assert loaded == events
        assert loaded.store_key == key

    def test_migrate_adopts_flat_files_byte_identically(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        src = store.path_for(spec, spec.resolve())
        flat = tmp_path / src.name
        os.replace(src, flat)
        blob = flat.read_bytes()

        library = TraceLibrary(tmp_path)
        report = library.migrate()
        assert report["migrated"] == [flat.name]
        assert not report["failed"]
        assert not flat.exists()
        assert src.read_bytes() == blob
        # A second migrate is a no-op that counts the sharded entry.
        again = library.migrate()
        assert again["migrated"] == []
        assert again["already_sharded"] == 1

    @pytest.mark.parametrize("damage", [
        lambda p: p.write_text("{torn"),
        lambda p: p.write_text(json.dumps({"manifest_version": 99,
                                           "entries": {}})),
        lambda p: p.write_text(json.dumps({"no": "entries"})),
        lambda p: p.unlink(),
    ], ids=["torn", "version-skew", "shape", "missing"])
    def test_bad_manifest_is_rebuilt_not_fatal(self, tmp_path, damage):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        events = store.load(spec)
        key = store.trace_key(spec)
        damage(tmp_path / MANIFEST_NAME)
        library = TraceLibrary(tmp_path)
        assert library.read_manifest() is None
        document = library.manifest()  # heals from the payloads
        assert key in document["entries"]
        # And loading still works off the payload regardless.
        assert TraceStore(tmp_path).load(spec) == events
        assert counter["runs"] == 1

    def test_gc_sweeps_litter_only(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        payload = store.path_for(spec, spec.resolve())
        (payload.parent / "x.tmp").write_text("leftover")
        orphan = payload.parent / "ghost-aaaa.json"
        orphan.write_text("{}")
        empty = tmp_path / SHARDS_DIR / "zz"
        empty.mkdir(parents=True)
        report = store.library.gc()
        assert report["tmp_files"] == ["x.tmp"]
        assert report["orphan_sidecars"] == ["ghost-aaaa.json"]
        assert report["empty_shards"] == ["zz"]
        assert payload.exists()
        assert payload.with_suffix(".json").exists()

    def test_stats_counts_layout(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        store.load(_spec(counter))
        stats = store.stats()
        assert stats["payloads"] == stats["sharded"] == 1
        assert stats["flat"] == 0
        assert stats["payload_bytes"] > 0
        assert stats["manifest"] is True
        assert stats["result_cache"]["entries"] == 0


# -- satellite: sidecar audit ---------------------------------------------

class TestSidecarAudit:
    def test_mismatched_sidecar_is_reported_not_quarantined(
            self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        payload = store.path_for(spec, spec.resolve())
        sidecar = payload.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["params"] = {"length": 9999}  # stale: no longer keys here
        sidecar.write_text(json.dumps(meta))

        report = store.verify()
        assert report["ok"] == 1
        assert not report["corrupt"]
        (name, reason) = report["mismatched"][0]
        assert name == payload.name
        assert "key" in reason
        assert payload.exists()  # the payload is the truth: untouched
        assert not (tmp_path / QUARANTINE_DIR).exists()

    def test_event_count_mismatch_is_reported(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        payload = store.path_for(spec, spec.resolve())
        sidecar = payload.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["events"] = meta["events"] + 1
        sidecar.write_text(json.dumps(meta))
        report = store.verify()
        assert report["ok"] == 1
        assert report["mismatched"]

    def test_clean_store_has_no_mismatches(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        store.load(_spec(counter))
        report = store.verify()
        assert report["mismatched"] == []
        assert report["ok"] == 1


# -- mmap zero-copy loading -----------------------------------------------

def _builder_events(n):
    builder = TraceBuilder()
    for i in range(n):
        builder.record((i * 13) % 4093, 1 + i % 11, i % 7, bool(i % 3))
    return builder.snapshot()


class TestMappedLifetime:
    def _mapped_store(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        TraceStore(tmp_path).load(spec)  # generate (write path)
        store = TraceStore(tmp_path)     # fresh memo: read path
        return store, spec

    def test_load_is_mapped_and_counts_telemetry(self, tmp_path):
        store, spec = self._mapped_store(tmp_path)
        telemetry.install(tmp_path / "t", fresh=True)
        events = store.load(spec)
        telemetry.finalize()
        assert isinstance(events, MappedTrace)
        metrics = json.loads(
            (tmp_path / "t" / "metrics.json").read_text())
        assert metrics["counters"]["store.mmap_open"] == 1

    def test_closed_trace_raises_typed_error(self, tmp_path):
        store, spec = self._mapped_store(tmp_path)
        events = store.load(spec)
        assert len(events) == 64
        store.close()
        assert events.closed
        for touch in (lambda: len(events), lambda: events[0],
                      lambda: events.addresses(),
                      lambda: events.dispatched_indices(),
                      lambda: events.to_bytes(),
                      lambda: list(events)):
            with pytest.raises(MappedBufferClosed):
                touch()
        store.close()  # idempotent

    def test_preclose_column_view_survives_close(self, tmp_path):
        store, spec = self._mapped_store(tmp_path)
        events = store.load(spec)
        addresses = events.addresses()
        expected = list(addresses)
        store.close()
        # The sliced-out view pins the mapping; reads stay valid (no
        # interpreter crash) even though the trace itself is closed.
        assert list(addresses) == expected

    def test_copy_outlives_the_store(self, tmp_path):
        store, spec = self._mapped_store(tmp_path)
        events = store.load(spec)
        duplicate = events.copy()
        assert duplicate.store_key == events.store_key
        store.close()
        assert len(duplicate) == 64
        assert not isinstance(duplicate, MappedTrace)
        assert duplicate == TraceStore(tmp_path).load(spec)

    def test_env_var_disables_mmap(self, tmp_path, monkeypatch):
        store, spec = self._mapped_store(tmp_path)
        monkeypatch.setenv("REPRO_STORE_MMAP", "0")
        events = store.load(spec)
        assert not isinstance(events, MappedTrace)

    def test_mapped_corruption_still_quarantines(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        payload = store.path_for(spec, spec.resolve())
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))

        fresh = TraceStore(tmp_path)
        events = fresh.load(spec)  # quarantine + regenerate
        assert counter["runs"] == 2
        assert len(events) == 64
        assert (tmp_path / QUARANTINE_DIR / payload.name).exists()

    def test_million_event_trace_round_trips_mapped(self, tmp_path):
        base = _builder_events(70_000)
        builder = TraceBuilder()
        for _ in range(16):
            builder.extend(base)
        big = builder.snapshot()
        assert len(big) > 1_000_000
        blob = big.to_bytes()
        mapped = Trace.from_buffer(memoryview(blob))
        if isinstance(mapped, MappedTrace):  # little-endian fast path
            assert len(mapped) == len(big)
            assert mapped.addresses()[-1] == big.addresses()[-1]
            assert mapped.dispatched_count() == big.dispatched_count()
            assert mapped.verify() is mapped
            mapped.close()
            with pytest.raises(MappedBufferClosed):
                mapped.addresses()
        else:
            assert mapped == big

    def test_from_buffer_defers_crc_to_first_touch(self, tmp_path):
        trace = _builder_events(256)
        blob = bytearray(trace.to_bytes())
        # Flip a bit inside the address column's data.
        blob[16] ^= 0x01
        mapped = Trace.from_buffer(memoryview(bytes(blob)))
        if not isinstance(mapped, MappedTrace):
            pytest.skip("big-endian host copies eagerly")
        assert len(mapped) == 256  # structure is fine; no CRC yet
        assert list(mapped.opcodes())  # untouched block verifies
        with pytest.raises(StoreCorruption):
            mapped.addresses()
        with pytest.raises(StoreCorruption):
            mapped.addresses()  # stays corrupt on re-touch


# -- satellite: big-endian bitset discipline ------------------------------

class TestBigEndianBitset:
    EVENTS = [TraceEvent(12345, 7, -1, False),
              TraceEvent(0, 0, 0, True),
              TraceEvent(-70000, 255, 4, True),
              TraceEvent(81, 3, 2, False)]

    def test_from_bytes_never_swaps_the_dispatched_bitset(
            self, monkeypatch):
        import repro.trace.columnar as columnar_module
        blob = Trace.from_events(self.EVENTS).to_bytes()
        native = Trace.from_bytes(blob)
        # Simulate a big-endian reader of a little-endian payload:
        # the int columns byteswap, the bitset must not.
        monkeypatch.setattr(columnar_module, "_SWAP", True)
        swapped = Trace.from_bytes(blob)
        assert list(swapped.dispatched_indices()) == \
            list(native.dispatched_indices()) == [1, 2]
        assert [swapped.dispatched_flag(i) for i in range(4)] == \
            [event.dispatched for event in self.EVENTS]

    def test_from_buffer_big_endian_falls_back_through_from_bytes(
            self, monkeypatch):
        import repro.trace.columnar as columnar_module
        blob = Trace.from_events(self.EVENTS).to_bytes()
        monkeypatch.setattr(columnar_module, "_SWAP", True)
        trace = Trace.from_buffer(memoryview(blob))
        # The fallback copies: no mapped lifetime to manage ...
        assert not isinstance(trace, MappedTrace)
        # ... and the bitset is read as-is (byte-order independent).
        assert list(trace.dispatched_indices()) == [1, 2]


# -- the sweep-result cache -----------------------------------------------

def _store_trace(tmp_path, length=512):
    counter = {"runs": 0}
    spec = _spec(counter)
    spec = WorkloadSpec(name="synthetic", description="test-only",
                        build=spec.build, defaults={"length": length})
    store = TraceStore(tmp_path)
    return store, store.load(spec), counter


SWEEP = SweepSpec(cache="itlb", sizes=(8, 16, 32),
                  associativities=(1, 2), double_pass=True)


class TestResultCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        cold = run_sweep(SWEEP, events)
        key = result_cache_key(SWEEP, events.store_key)
        assert store.result_cache().contains(key)
        warm = run_sweep(SWEEP, events)
        assert warm.counts == cold.counts
        assert warm.meta == cold.meta
        assert warm.table() == cold.table()
        assert list(warm.counts) == list(cold.counts)  # iteration order

    def test_warm_query_replays_nothing(self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        run_sweep(SWEEP, events)
        telemetry.install(tmp_path / "t", fresh=True)
        run_sweep(SWEEP, events)
        telemetry.finalize()
        counters = json.loads(
            (tmp_path / "t" / "metrics.json").read_text())["counters"]
        assert counters["result_cache.hit"] == 1
        assert not any(k.startswith("sweep.replay") for k in counters)

    def test_key_covers_spec_trace_and_engine_version(self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        key = result_cache_key(SWEEP, events.store_key)
        assert key != result_cache_key(SWEEP, "other-trace")
        from dataclasses import replace
        for changed in (replace(SWEEP, sizes=(8, 16)),
                        replace(SWEEP, semantics="v2"),
                        replace(SWEEP, engine="single-pass"),
                        replace(SWEEP, cache="icache")):
            assert result_cache_key(changed, events.store_key) != key
        # The display label is NOT part of the identity.
        assert result_cache_key(replace(SWEEP, label="renamed"),
                                events.store_key) == key

    def test_corrupt_entry_is_a_clean_miss_and_rewritten(self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        cold = run_sweep(SWEEP, events)
        key = result_cache_key(SWEEP, events.store_key)
        path = store.result_cache().path_for(key)
        path.write_text("{nope")
        warm = run_sweep(SWEEP, events)  # miss -> replay -> re-put
        assert warm.counts == cold.counts
        assert json.loads(path.read_text())["surface"] == 1

    def test_unstamped_trace_bypasses_the_cache(self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        bare = events.copy()
        bare.store_key = bare.store_root = None
        run_sweep(SWEEP, bare)
        assert store.result_cache().stats()["entries"] == 0

    def test_env_var_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        store, events, _ = _store_trace(tmp_path)
        run_sweep(SWEEP, events)
        assert not ResultCache.enabled()
        assert store.result_cache().stats()["entries"] == 0

    def test_lru_eviction_honors_byte_budget(self, tmp_path):
        cache = ResultCache(tmp_path, budget_bytes=0)
        cache.put("a" * 24, {"surface": 1, "n": 1})
        assert cache.stats()["entries"] == 0  # evicted immediately
        roomy = ResultCache(tmp_path, budget_bytes=1 << 20)
        roomy.put("b" * 24, {"surface": 1, "n": 2})
        assert roomy.stats()["entries"] == 1

    def test_lru_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(tmp_path, budget_bytes=1 << 20)
        old, new = "c" * 24, "d" * 24
        cache.put(old, {"n": 1})
        cache.put(new, {"n": 2})
        past = os.stat(cache.path_for(new)).st_mtime - 1000
        os.utime(cache.path_for(old), (past, past))
        cache.budget_bytes = cache.stats()["bytes"] - 1
        assert cache.evict() == 1
        assert not cache.contains(old)
        assert cache.contains(new)

    def test_eviction_breaks_equal_mtimes_by_filename(self, tmp_path):
        # Coarse-granularity filesystems stamp whole batches of puts
        # with one timestamp; the tie must break by the entry's
        # filename (the content key), not by directory-scan order.
        cache = ResultCache(tmp_path, budget_bytes=1 << 20)
        keys = ["f" * 24, "a" * 24, "d" * 24]
        for key in keys:
            cache.put(key, {"n": key[0]})
        stamp = os.stat(cache.path_for(keys[0])).st_mtime_ns
        for key in keys:
            os.utime(cache.path_for(key), ns=(stamp, stamp))
        cache.budget_bytes = cache.stats()["bytes"] - 1
        assert cache.evict() == 1
        assert not cache.contains("a" * 24)   # first filename goes
        assert cache.contains("d" * 24)
        assert cache.contains("f" * 24)

    def test_eviction_lru_clock_is_nanosecond_precise(self, tmp_path):
        # 1ns apart within the same second: the ns clock must decide
        # (a float-seconds clock would fall through to the name
        # tie-break and evict the wrong entry here).
        cache = ResultCache(tmp_path, budget_bytes=1 << 20)
        older, newer = "z" * 24, "a" * 24
        cache.put(older, {"n": 1})
        cache.put(newer, {"n": 2})
        stamp = os.stat(cache.path_for(older)).st_mtime_ns
        os.utime(cache.path_for(older), ns=(stamp, stamp))
        os.utime(cache.path_for(newer), ns=(stamp + 1, stamp + 1))
        cache.budget_bytes = cache.stats()["bytes"] - 1
        assert cache.evict() == 1
        assert not cache.contains(older)
        assert cache.contains(newer)

    def test_get_refreshes_the_lru_clock(self, tmp_path):
        cache = ResultCache(tmp_path, budget_bytes=1 << 20)
        key = "e" * 24
        cache.put(key, {"n": 1})
        past = os.stat(cache.path_for(key)).st_mtime - 1000
        os.utime(cache.path_for(key), (past, past))
        cache.get(key)
        assert os.stat(cache.path_for(key)).st_mtime > past + 500


# -- the new fault sites --------------------------------------------------

class TestNewFaultSites:
    def test_manifest_corruption_heals_by_rebuild(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        events = store.load(spec)
        plan = FaultPlan.parse("store.manifest:corrupt:times=1", seed=7)
        faults.install(plan)
        try:
            library = TraceLibrary(tmp_path)
            assert library.read_manifest() is None  # injected tear
            document = library.manifest()           # heals
        finally:
            faults.install(None)
        assert document["entries"]
        assert TraceStore(tmp_path).load(spec) == events

    def test_result_cache_corruption_is_a_miss_under_chaos(
            self, tmp_path):
        store, events, _ = _store_trace(tmp_path)
        cold = run_sweep(SWEEP, events)
        plan = FaultPlan.parse("store.result_cache:corrupt:times=1",
                               seed=7)
        faults.install(plan)
        try:
            warm = run_sweep(SWEEP, events)
        finally:
            faults.install(None)
        assert warm.counts == cold.counts  # replayed, not misread

    def test_mmap_is_disabled_under_any_fault_plan(self, tmp_path):
        counter = {"runs": 0}
        spec = _spec(counter)
        TraceStore(tmp_path).load(spec)
        faults.install(FaultPlan.parse("worker.task:error:p=0.0",
                                       seed=1))
        try:
            events = TraceStore(tmp_path).load(spec)
        finally:
            faults.install(None)
        # Injection sequences must match the pre-mmap store exactly,
        # so chaos runs take the byte path.
        assert not isinstance(events, MappedTrace)


# -- CLI ------------------------------------------------------------------

class TestStoreCli:
    def test_stats_and_gc_and_migrate(self, tmp_path, capsys):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        store.load(_spec(counter))
        assert cli_main(["store", "stats",
                         "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "payloads:     1" in out
        assert "result cache:" in out

        payload = next(store.library.payload_paths())
        flat = tmp_path / payload.name
        os.replace(payload, flat)
        assert cli_main(["store", "migrate",
                         "--trace-dir", str(tmp_path)]) == 0
        assert "migrated:        1" in capsys.readouterr().out
        assert not flat.exists()

        (tmp_path / "junk.tmp").write_text("x")
        assert cli_main(["store", "gc",
                         "--trace-dir", str(tmp_path)]) == 0
        assert "tmp files removed:       1" in capsys.readouterr().out

    def test_verify_reports_mismatches_with_exit_zero(self, tmp_path,
                                                      capsys):
        counter = {"runs": 0}
        spec = _spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        sidecar = store.path_for(spec, spec.resolve()) \
            .with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["params"] = {"length": 1}
        sidecar.write_text(json.dumps(meta))
        assert cli_main(["store", "verify",
                         "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt:     0" in out
        assert "mismatched:  1" in out


# -- harness integration: run twice, replay zero ---------------------------

class TestRepeatedRunReplaysNothing:
    def test_second_quick_fig10_run_is_cache_served(self, tmp_path):
        from repro.experiments.harness import run_all
        from repro.telemetry import report as telemetry_report

        common = dict(stream=io.StringIO(), only=["FIG-10"],
                      quick=True, jobs=2,
                      trace_dir=str(tmp_path / "traces"),
                      with_telemetry=True)
        cold = run_all(run_dir=str(tmp_path / "r1"), **common)
        warm = run_all(run_dir=str(tmp_path / "r2"), **common)

        assert [c.holds for r in cold for c in r.claims] == \
            [c.holds for r in warm for c in r.claims]
        assert cold[0].table == warm[0].table  # byte-identical figure

        (run_dir,) = [child for child in (tmp_path / "r2").iterdir()
                      if (child / "telemetry").is_dir()]
        metrics = telemetry_report.load_run(run_dir)["metrics"]
        assert telemetry_report.counter_total(
            metrics, "sweep.replay") == 0
        assert telemetry_report.counter_total(
            metrics, "result_cache.hit") >= 1
        assert telemetry_report.counter_total(
            metrics, "harness.cache_served") == 1
