"""Tests for the function units (repro.core.primitives)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.constants import FALSE, TRUE
from repro.core.primitives import (
    ArithmeticTrap,
    UNITS,
    execute_unit,
    unit_add,
    unit_ashift,
    unit_carry,
    unit_div,
    unit_eq,
    unit_lt,
    unit_mask,
    unit_mod,
    unit_mult1,
    unit_mult2,
    unit_mul,
    unit_neg,
    unit_not,
    unit_rotate,
    unit_same,
    unit_shift,
    unit_sub,
    unit_tag,
    unit_xor,
)
from repro.errors import TagMismatch
from repro.memory.tags import (
    SMALL_INTEGER_BITS,
    SMALL_INTEGER_MAX,
    Tag,
    Word,
)

I = Word.small_integer
F = Word.floating


class TestArithmetic:
    def test_int_add(self):
        assert unit_add(I(2), I(3)).value == 5
        assert unit_add(I(2), I(3)).tag is Tag.SMALL_INTEGER

    def test_float_add(self):
        result = unit_add(F(1.5), F(2.5))
        assert result.tag is Tag.FLOAT
        assert result.value == 4.0

    def test_mixed_mode_promotes(self):
        # "Some mixed mode instructions are primitive" (section 3.3).
        assert unit_add(I(1), F(0.5)).tag is Tag.FLOAT
        assert unit_mul(F(2.0), I(3)).value == 6.0

    def test_int_overflow_traps(self):
        with pytest.raises(ArithmeticTrap):
            unit_add(I(SMALL_INTEGER_MAX), I(1))

    def test_div_truncates_toward_zero(self):
        assert unit_div(I(7), I(2)).value == 3
        assert unit_div(I(-7), I(2)).value == -3
        assert unit_div(I(7), I(-2)).value == -3

    def test_div_by_zero(self):
        with pytest.raises(ArithmeticTrap):
            unit_div(I(1), I(0))
        with pytest.raises(ArithmeticTrap):
            unit_div(F(1.0), F(0.0))

    def test_mod_int_only(self):
        assert unit_mod(I(7), I(3)).value == 1
        with pytest.raises(TagMismatch):
            unit_mod(F(7.0), I(3))
        with pytest.raises(ArithmeticTrap):
            unit_mod(I(7), I(0))

    def test_neg(self):
        assert unit_neg(I(5)).value == -5
        assert unit_neg(F(2.5)).value == -2.5

    def test_non_numeric_rejected(self):
        with pytest.raises(TagMismatch):
            unit_add(Word.atom("a"), I(1))

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_sub_inverse(self, a, b):
        assert unit_sub(unit_add(I(a), I(b)), I(b)).value == a


class TestMultiplePrecision:
    @given(st.integers(0, (1 << SMALL_INTEGER_BITS) - 1),
           st.integers(0, (1 << SMALL_INTEGER_BITS) - 1))
    def test_carry_matches_wide_sum(self, a, b):
        # CARRY exists so multiple-precision arithmetic needs no flags.
        sa = a - (1 << SMALL_INTEGER_BITS) if a >> (SMALL_INTEGER_BITS - 1) \
            else a
        sb = b - (1 << SMALL_INTEGER_BITS) if b >> (SMALL_INTEGER_BITS - 1) \
            else b
        carry = unit_carry(I(sa), I(sb)).value
        assert carry == (a + b) >> SMALL_INTEGER_BITS

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_mult1_mult2_reconstruct_product(self, a, b):
        low = unit_mult1(I(a), I(b)).value & ((1 << SMALL_INTEGER_BITS) - 1)
        high = unit_mult2(I(a), I(b)).value & ((1 << SMALL_INTEGER_BITS) - 1)
        assert (high << SMALL_INTEGER_BITS) | low == a * b


class TestBitField:
    def test_shift_left_right(self):
        assert unit_shift(I(1), I(4)).value == 16
        assert unit_shift(I(16), I(-4)).value == 1

    def test_shift_drops_bits(self):
        assert unit_shift(I(1), I(SMALL_INTEGER_BITS)).value == 0

    def test_ashift_preserves_sign(self):
        assert unit_ashift(I(-8), I(-2)).value == -2
        assert unit_ashift(I(8), I(1)).value == 16

    def test_rotate_roundtrip(self):
        word = I(0b1011)
        rotated = unit_rotate(word, I(5))
        back = unit_rotate(rotated, I(SMALL_INTEGER_BITS - 5))
        assert back.value == word.value

    @given(st.integers(-(1 << 27), (1 << 27) - 1),
           st.integers(0, SMALL_INTEGER_BITS))
    def test_rotate_full_cycle_identity(self, value, count):
        word = I(value)
        once = unit_rotate(word, I(count))
        cycle = unit_rotate(once, I(SMALL_INTEGER_BITS - count))
        assert cycle.value == value

    def test_mask_extracts_low_bits(self):
        assert unit_mask(I(0xFF), I(4)).value == 0xF
        assert unit_mask(I(0xFF), I(0)).value == 0

    def test_mask_negative_width(self):
        with pytest.raises(ArithmeticTrap):
            unit_mask(I(1), I(-1))

    def test_not_involution(self):
        assert unit_not(unit_not(I(1234))).value == 1234

    @given(st.integers(-(1 << 27), (1 << 27) - 1))
    def test_xor_self_is_zero(self, value):
        assert unit_xor(I(value), I(value)).value == 0

    def test_bit_ops_reject_floats(self):
        with pytest.raises(TagMismatch):
            unit_xor(F(1.0), I(1))


class TestComparisons:
    def test_lt(self):
        assert unit_lt(I(1), I(2)) is TRUE
        assert unit_lt(I(2), I(1)) is FALSE
        assert unit_lt(I(1), F(1.5)) is TRUE

    def test_eq_numeric(self):
        assert unit_eq(I(3), F(3.0)) is TRUE
        assert unit_eq(I(3), I(4)) is FALSE

    def test_eq_atoms(self):
        assert unit_eq(Word.atom("a"), Word.atom("a")) is TRUE
        assert unit_eq(Word.atom("a"), Word.atom("b")) is FALSE

    def test_same_defined_for_all_types(self):
        # "The == (same object) comparison is defined for all types."
        assert unit_same(Word.atom("x"), Word.atom("x")) is TRUE
        assert unit_same(I(3), F(3.0)) is FALSE
        assert unit_same(Word.pointer(5, 20), Word.pointer(5, 20)) is TRUE
        assert unit_same(Word.uninitialized(), Word.uninitialized()) is TRUE

    def test_lt_rejects_atoms(self):
        with pytest.raises(TagMismatch):
            unit_lt(Word.atom("a"), Word.atom("b"))


class TestTagUnit:
    def test_tag_values(self):
        assert unit_tag(I(1)).value == int(Tag.SMALL_INTEGER)
        assert unit_tag(F(1.0)).value == int(Tag.FLOAT)
        assert unit_tag(Word.pointer(0, 20)).value == int(Tag.OBJECT_POINTER)


class TestRegistry:
    def test_every_unit_has_correct_arity(self):
        for name, (arity, fn) in UNITS.items():
            assert arity in (1, 2)

    def test_execute_unit(self):
        assert execute_unit("arith.add", [I(1), I(2)]).value == 3

    def test_execute_unknown_unit(self):
        with pytest.raises(TagMismatch):
            execute_unit("nope", [I(1)])

    def test_execute_short_operands(self):
        with pytest.raises(TagMismatch):
            execute_unit("arith.add", [I(1)])

    def test_extra_operands_ignored(self):
        assert execute_unit("move", [I(5), I(9)]).value == 5
