"""Tests for opcodes, operand descriptors, instruction encoding and the
constant table (repro.core.{isa,operands,encoding,constants})."""

import pytest
from hypothesis import given, strategies as st

from repro.core.constants import (
    FALSE,
    NIL,
    TRUE,
    ConstantTable,
    boolean_word,
    is_true,
)
from repro.core.encoding import Instruction, disassemble
from repro.core.isa import (
    FIRST_USER_OPCODE,
    NUM_OPCODES,
    Op,
    OP_SELECTORS,
    OpcodeTable,
)
from repro.core.operands import (
    CONSTANT_TABLE_SIZE,
    MAX_CONTEXT_OFFSET,
    Mode,
    Operand,
    Space,
)
from repro.errors import EncodingError
from repro.memory.tags import Word


class TestOpcodeTable:
    def test_architectural_preloaded(self):
        table = OpcodeTable()
        for op in Op:
            assert table.selector_of(int(op)) == OP_SELECTORS[op]
            assert table.number_of(OP_SELECTORS[op]) == int(op)

    def test_intern_user_selector(self):
        table = OpcodeTable()
        number = table.intern("frobnicate:")
        assert number >= FIRST_USER_OPCODE
        assert table.intern("frobnicate:") == number
        assert table.selector_of(number) == "frobnicate:"

    def test_intern_is_deterministic(self):
        a, b = OpcodeTable(), OpcodeTable()
        for selector in ("x", "y:", "z"):
            assert a.intern(selector) == b.intern(selector)

    def test_architectural_op(self):
        table = OpcodeTable()
        assert table.architectural_op(int(Op.ADD)) is Op.ADD
        assert table.architectural_op(FIRST_USER_OPCODE) is None
        assert table.architectural_op(0) is None

    def test_unassigned_number(self):
        with pytest.raises(EncodingError):
            OpcodeTable().selector_of(NUM_OPCODES - 1)

    def test_number_of_unknown(self):
        assert OpcodeTable().number_of("nope") is None


class TestOperands:
    def test_spellings(self):
        assert str(Operand.current(3)) == "c3"
        assert str(Operand.next(1)) == "n1"
        assert str(Operand.constant(7)) == "k7"

    def test_parse(self):
        assert Operand.parse("c5") == Operand.current(5)
        assert Operand.parse("n0") == Operand.next(0)
        assert Operand.parse("k12") == Operand.constant(12)

    def test_parse_errors(self):
        for bad in ("x3", "c", "3c", "", "cX"):
            with pytest.raises(EncodingError):
                Operand.parse(bad)

    def test_offset_limits(self):
        Operand.current(MAX_CONTEXT_OFFSET)
        with pytest.raises(EncodingError):
            Operand.current(MAX_CONTEXT_OFFSET + 1)
        Operand.constant(CONSTANT_TABLE_SIZE - 1)
        with pytest.raises(EncodingError):
            Operand.constant(CONSTANT_TABLE_SIZE)

    @given(st.sampled_from(["current", "next", "constant"]),
           st.integers(0, MAX_CONTEXT_OFFSET))
    def test_encode_decode_roundtrip(self, kind, offset):
        operand = getattr(Operand, kind)(offset)
        assert Operand.decode(operand.encode()) == operand

    def test_decode_bad_bits(self):
        with pytest.raises(EncodingError):
            Operand.decode(1 << 7)


def _operand_strategy():
    return st.one_of(
        st.integers(0, MAX_CONTEXT_OFFSET).map(Operand.current),
        st.integers(0, MAX_CONTEXT_OFFSET).map(Operand.next),
        st.integers(0, CONSTANT_TABLE_SIZE - 1).map(Operand.constant),
    )


class TestInstructionEncoding:
    @given(st.integers(0, NUM_OPCODES - 1), _operand_strategy(),
           _operand_strategy(), _operand_strategy(), st.booleans())
    def test_three_operand_roundtrip(self, opcode, a, b, c, returns):
        instruction = Instruction.three(opcode, a, b, c, returns)
        word = instruction.encode()
        assert 0 <= word < (1 << 32)
        assert Instruction.decode(word) == instruction

    @given(st.integers(0, NUM_OPCODES - 1), st.integers(0, 2),
           st.integers(-(1 << 18), (1 << 18) - 1), st.booleans())
    def test_zero_operand_roundtrip(self, opcode, nargs, imm, returns):
        instruction = Instruction.zero(opcode, nargs, imm, returns)
        assert Instruction.decode(instruction.encode()) == instruction

    def test_formats_distinguished(self):
        three = Instruction.three(5, Operand.current(0),
                                  Operand.current(1), Operand.current(2))
        zero = Instruction.zero(5, nargs=1)
        assert Instruction.decode(three.encode()).is_zero_operand is False
        assert Instruction.decode(zero.encode()).is_zero_operand is True

    def test_bad_nargs(self):
        with pytest.raises(EncodingError):
            Instruction.zero(1, nargs=3)

    def test_bad_opcode(self):
        with pytest.raises(EncodingError):
            Instruction.zero(NUM_OPCODES)

    def test_immediate_range(self):
        with pytest.raises(EncodingError):
            Instruction.zero(1, immediate=1 << 19)

    def test_decode_oversized_word(self):
        with pytest.raises(EncodingError):
            Instruction.decode(1 << 32)

    def test_mnemonic(self):
        inst = Instruction.three(int(Op.ADD), Operand.current(2),
                                 Operand.current(3), Operand.constant(1),
                                 returns=True)
        table = OpcodeTable()
        assert inst.mnemonic(table) == "+ c2,c3,k1 ^"

    def test_disassemble(self):
        table = OpcodeTable()
        words = [Instruction.zero(int(Op.HALT)).encode()]
        lines = disassemble(words, table)
        assert len(lines) == 1
        assert "halt" in lines[0]


class TestConstantTable:
    def test_architectural_indices(self):
        table = ConstantTable()
        assert table.get(0) is NIL
        assert table.get(1) is TRUE
        assert table.get(2) is FALSE

    def test_small_integers_preloaded(self):
        table = ConstantTable()
        assert table.intern(Word.small_integer(0)) == 3
        assert table.intern(Word.small_integer(9)) == 12

    def test_intern_dedupes(self):
        table = ConstantTable()
        first = table.intern(Word.small_integer(42))
        second = table.intern(Word.small_integer(42))
        assert first == second

    def test_distinct_types_distinct_slots(self):
        table = ConstantTable()
        assert table.intern(Word.small_integer(1)) != \
            table.intern(Word.floating(1.0))

    def test_capacity(self):
        table = ConstantTable()
        room = CONSTANT_TABLE_SIZE - len(table)
        for i in range(room):
            table.intern(Word.small_integer(1000 + i))
        with pytest.raises(EncodingError):
            table.intern(Word.small_integer(99999))

    def test_get_unassigned(self):
        with pytest.raises(EncodingError):
            ConstantTable().get(60)


class TestTruthiness:
    def test_booleans(self):
        assert is_true(TRUE)
        assert not is_true(FALSE)
        assert not is_true(NIL)

    def test_integers(self):
        assert is_true(Word.small_integer(1))
        assert is_true(Word.small_integer(-1))
        assert not is_true(Word.small_integer(0))

    def test_boolean_word(self):
        assert boolean_word(True) is TRUE
        assert boolean_word(False) is FALSE

    def test_other_words_false(self):
        assert not is_true(Word.atom("something"))
        assert not is_true(Word.uninitialized())
