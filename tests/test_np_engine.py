"""Equivalence and fallback tests for the vectorized numpy backend.

The load-bearing guarantee mirrors test_sweep.py's: the numpy replay
backend must be *bitwise-equal* to the pure-python stack-distance
engine -- histograms, ``total``, hit prefix sums AND post-replay stack
state -- across random column pairs (varying alphabet sizes, set
counts, depth caps, warm-up fractions, count=False segments, resets,
sub-ranges) and across the full paper grid under both
measurement-semantics versions.  CI runs the pins by name
(``-k "equivalence and paper"`` / ``-k "equivalence and v2"``) on the
numpy matrix leg; the numpy-free leg keeps the fallback honest (the
numpy-requiring tests skip themselves, the ``sys.modules``-block
tests run everywhere).
"""

import importlib
import random
import sys

import pytest

from repro.errors import BackendUnavailable
from repro.sweep import SweepSpec, np_engine, run_sweep
from repro.sweep.engine import MultiConfigLRU, OptStack, next_use_times
from repro.trace.events import TraceEvent

requires_numpy = pytest.mark.skipif(
    not np_engine.numpy_available(),
    reason="numpy is not installed (pure-python fallback leg)")


def _mixed_trace(n=2500, seed=7):
    """Phased locality + random stragglers + a non-dispatched mix."""
    rnd = random.Random(seed)
    events = []
    for i in range(n):
        if rnd.random() < 0.3:
            address = rnd.randrange(600)
        else:
            address = (i * 7) % 97 + (i // 500) * 64
        events.append(TraceEvent(address, rnd.randrange(60),
                                 rnd.randrange(5),
                                 dispatched=rnd.random() < 0.7))
    return events


@pytest.fixture(scope="module")
def events():
    return _mixed_trace()


def _random_case(seed):
    """One random (columns, geometry, replay plan) torture case.

    Plans mix counted and warm (count=False) sub-range segments with
    occasional mid-stream ``reset_counts`` -- every segmented-replay
    shape the runner can produce, plus ones it cannot yet.
    """
    rng = random.Random(987_000 + seed)
    nblocks = rng.choice([1, 2, 3, 5, 9, 17, 40, 200])
    n = rng.randrange(1, 150)
    blocks = [rng.randrange(nblocks) for _ in range(n)]
    pmap = {block: rng.getrandbits(16) for block in range(nblocks)}
    placements = [pmap[block] for block in blocks]
    ks = rng.sample([1, 2, 3, 4], rng.randrange(1, 4))
    level_caps = {k: rng.choice([1, 2, 3, 4, 5, 6, 8]) for k in ks}
    full_cap = rng.choice([0, 1, 3, 8])
    plan = []
    pos = 0
    while pos < n:
        nxt = rng.randrange(pos, n) + 1
        plan.append((pos, nxt, rng.random() < 0.7))
        if rng.random() < 0.2:
            plan.append("reset")
        pos = nxt
    return blocks, placements, level_caps, full_cap, plan


def _run_plan(engine, blocks, placements, plan):
    for step in plan:
        if step == "reset":
            engine.reset_counts()
        else:
            start, stop, count = step
            engine.replay_columns(blocks, placements, start, stop, count)


def _assert_engines_equal(pure, fast, level_caps, full_cap):
    assert fast.histograms() == pure.histograms()
    assert fast.total == pure.total
    assert fast.stack_state() == pure.stack_state()
    for k, cap in level_caps.items():
        for assoc in range(1, cap + 1):
            assert fast.hits(k, assoc) == pure.hits(k, assoc)
    if full_cap:
        assert fast._full_hist == pure._full_hist
        for entries in range(1, full_cap + 1):
            assert fast.full_hits(entries) == pure.full_hits(entries)


@requires_numpy
class TestRandomizedEquivalence:
    """Seeded random column pairs pinned numpy == python bitwise."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_plan_equivalence(self, seed):
        blocks, placements, level_caps, full_cap, plan = _random_case(seed)
        pure = MultiConfigLRU(dict(level_caps), full_cap)
        fast = np_engine.NumpyMultiConfigLRU(dict(level_caps), full_cap)
        _run_plan(pure, blocks, placements, plan)
        _run_plan(fast, blocks, placements, plan)
        _assert_engines_equal(pure, fast, level_caps, full_cap)

    def test_cycle_pattern_equivalence(self):
        # 3/4-symbol cycles are the chain resolver's worst case: every
        # reference is a deep re-reference and runs stay length one.
        rng = random.Random(1985)
        blocks = []
        for _ in range(60):
            blocks.extend(range(4))
            if rng.random() < 0.3:
                blocks.append(4 + rng.randrange(3))
        pmap = {block: rng.getrandbits(16) for block in range(7)}
        placements = [pmap[block] for block in blocks]
        level_caps = {1: 4, 2: 5}
        pure = MultiConfigLRU(dict(level_caps))
        fast = np_engine.NumpyMultiConfigLRU(dict(level_caps))
        pure.replay_columns(blocks, placements)
        fast.replay_columns(blocks, placements)
        _assert_engines_equal(pure, fast, level_caps, 0)

    def test_touch_equivalence(self):
        # One-reference segments through the carry machinery, against
        # both the pure touch and the pure bulk replay.
        rng = random.Random(44)
        pmap = {block: rng.getrandbits(16) for block in range(30)}
        refs = [(block, pmap[block])
                for block in (rng.randrange(30) for _ in range(400))]
        bulk = MultiConfigLRU({1: 2, 3: 4}, full_cap=8)
        pure = MultiConfigLRU({1: 2, 3: 4}, full_cap=8)
        fast = np_engine.NumpyMultiConfigLRU({1: 2, 3: 4}, full_cap=8)
        bulk.replay(refs)
        for i, (block, placement) in enumerate(refs):
            count = i % 5 != 0
            pure.touch(block, placement, count=count)
            fast.touch(block, placement, count=count)
        _assert_engines_equal(pure, fast, {1: 2, 3: 4}, 8)
        assert bulk.stack_state() == pure.stack_state()

    def test_next_use_times_equivalence(self):
        rng = random.Random(5)
        blocks = [rng.randrange(40) for _ in range(500)]
        assert np_engine.np_next_use_times(blocks) == \
            [float(t) for t in next_use_times(blocks)]
        assert np_engine.np_next_use_times([]) == []


@requires_numpy
class TestSweepEquivalence:
    """run_sweep(engine="numpy") == run_sweep(engine="single-pass"),
    full paper grid, every warm-up window, both semantics."""

    WINDOWS = [
        {"double_pass": True},
        {"warmup_fraction": 0.25},
        {"warmup_fraction": 0.0},
        {"warmup_fraction": 0.9},
    ]

    @pytest.mark.parametrize("semantics", ["paper", "v2"])
    @pytest.mark.parametrize("window", WINDOWS,
                             ids=[str(w) for w in WINDOWS])
    @pytest.mark.parametrize("cache", ["itlb", "icache"])
    def test_numpy_single_pass_equivalence(self, cache, window,
                                           semantics, events):
        common = dict(cache=cache, include_full=True, include_opt=True,
                      semantics=semantics, **window)
        pure = run_sweep(SweepSpec(engine="single-pass", **common),
                         events)
        fast = run_sweep(SweepSpec(engine="numpy", **common), events)
        assert fast.counts == pure.counts
        assert fast.opt_counts == pure.opt_counts
        assert fast.meta["engine"] == "numpy"
        assert pure.meta["engine"] == "single-pass"
        assert fast.meta["trace_passes"] == pure.meta["trace_passes"]
        assert fast.meta["measured"] == pure.meta["measured"]

    def test_auto_uses_numpy_when_available(self, events):
        surface = run_sweep(SweepSpec("itlb", double_pass=True), events)
        assert surface.meta["engine"] == "numpy"

    def test_numpy_engine_requires_eligibility(self, events):
        with pytest.raises(ValueError, match="eligible"):
            run_sweep(SweepSpec("itlb", policy="fifo", engine="numpy"),
                      events)


@requires_numpy
class TestPlacementPurityGuard:
    """The carry-prefix reconstruction assumes placement is a function
    of block; violations must raise, never silently diverge."""

    def test_in_segment_violation_raises(self):
        fast = np_engine.NumpyMultiConfigLRU({1: 2})
        with pytest.raises(ValueError, match="pure function"):
            fast.replay_columns([5, 5], [10, 11])

    def test_cross_segment_violation_raises(self):
        fast = np_engine.NumpyMultiConfigLRU({1: 2})
        fast.touch(5, 10)
        with pytest.raises(ValueError, match="pure function"):
            fast.touch(5, 11)


class TestHitPrefixCaching:
    """hits()/full_hits()/OptStack.hits() answers stay correct across
    counted updates and resets (the cached prefix sums invalidate)."""

    def test_multi_config_cache_invalidation(self):
        engine = MultiConfigLRU({2: 3}, full_cap=4)
        stream = [(i % 7, i % 7) for i in range(60)]
        engine.replay(stream)
        assert engine.hits(2, 2) == sum(engine.histograms()[2][:2])
        first = engine.hits(2, 2)
        assert engine.hits(2, 2) == first          # cached path
        engine.replay(stream)                      # invalidates
        assert engine.hits(2, 2) == sum(engine.histograms()[2][:2])
        assert engine.full_hits(3) == sum(engine._full_hist[:3])
        engine.touch(3, 3)                         # invalidates too
        assert engine.hits(2, 2) == sum(engine.histograms()[2][:2])
        engine.reset_counts()
        assert engine.hits(2, 3) == 0
        assert engine.full_hits(4) == 0

    def test_opt_stack_cache_invalidation(self):
        blocks = [i % 5 for i in range(40)]
        next_use = next_use_times(blocks)
        opt = OptStack(4)
        for block, nxt in zip(blocks[:20], next_use[:20]):
            opt.touch(block, nxt)
        assert opt.hits(3) == sum(opt.hist[:3])
        for block, nxt in zip(blocks[20:], next_use[20:]):
            opt.touch(block, nxt)
        assert opt.hits(3) == sum(opt.hist[:3])
        opt.reset_counts()
        assert opt.hits(4) == 0


class TestNumpyAbsent:
    """engine="auto" must fall back cleanly and engine="numpy" must
    raise the typed, actionable error when numpy cannot be imported.
    These run on every CI leg: the block simulates absence even where
    numpy is installed."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        importlib.reload(np_engine)
        assert not np_engine.numpy_available()
        yield
        monkeypatch.undo()
        importlib.reload(np_engine)

    def test_auto_falls_back_to_pure_python(self, no_numpy, events):
        surface = run_sweep(
            SweepSpec("itlb", sizes=(8, 64), associativities=(1, 2),
                      double_pass=True), events)
        assert surface.meta["engine"] == "single-pass"

    def test_forced_numpy_raises_typed_actionable_error(self, no_numpy,
                                                        events):
        with pytest.raises(BackendUnavailable,
                           match=r"pip install .*numpy"):
            run_sweep(SweepSpec("itlb", engine="numpy"), events)

    def test_engine_construction_raises_too(self, no_numpy):
        with pytest.raises(BackendUnavailable):
            np_engine.NumpyMultiConfigLRU({1: 2})

    def test_reload_restores_availability(self):
        # The fixture teardown reloaded the real module: whatever the
        # environment has is reported again (and the sweep API still
        # works on the pure path regardless).
        try:
            import numpy  # noqa: F401
            importable = True
        except ImportError:
            importable = False
        assert np_engine.numpy_available() == importable
