"""Smoke tests: the run-everything harness and the example scripts.

These guarantee the documented entry points (`python -m
repro.experiments.harness`, `python examples/<script>.py`) keep
working; detailed claim checks live in test_experiments.py.
"""

import io
import pathlib
import runpy

import pytest

from repro.experiments.harness import run_all

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.slow
class TestHarness:
    def test_quick_run_reproduces_everything(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        stream = io.StringIO()
        results = run_all(quick=True, stream=stream,
                          trace_dir=trace_dir)
        assert len(results) == 7
        failed = [claim.claim
                  for result in results
                  for claim in result.claims if not claim.holds]
        assert not failed, failed
        output = stream.getvalue()
        assert "SUMMARY" in output
        assert "DIVERGES" not in output
        # The first run materialized the measurement trace into the
        # store; a second harness run must load it (no Fith
        # re-execution for cached workloads).
        rerun = io.StringIO()
        again = run_all(quick=True, stream=rerun, only=["FIG-10"],
                        trace_dir=trace_dir)
        assert "loaded from trace store" in rerun.getvalue()
        assert again[0].all_hold


class TestExamples:
    @pytest.mark.parametrize(
        "script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{script.name} printed nothing"

    def test_quickstart_prints_factorial(self, capsys):
        runpy.run_path(str(next(p for p in EXAMPLES
                                if p.stem == "quickstart")),
                       run_name="__main__")
        assert "3628800" in capsys.readouterr().out

    def test_coroutine_prints_42(self, capsys):
        runpy.run_path(str(next(p for p in EXAMPLES
                                if p.stem == "coroutines_xfer")),
                       run_name="__main__")
        assert "42" in capsys.readouterr().out
