"""Tests for the experiment registry, the parallel engine and the CLI."""

import io

import pytest

from repro.cli import main as cli_main
from repro.experiments import registry
from repro.experiments.harness import list_experiments, run_all
from repro.experiments.registry import ExperimentSpec, RunContext

#: The seed harness's stage list, in order.  Registry-driven runs must
#: keep reproducing exactly this suite.
SEED_STAGES = ["FIG-10", "FIG-11", "TAB-CALL", "TAB-CTX", "TAB-CCACHE",
               "TAB-ADDR", "TAB-3ADDR"]

#: Cheap experiments (no trace workloads) used for engine-level tests.
LIGHT = ["TAB-ADDR", "TAB-CCACHE"]


class TestRegistry:
    def test_parity_with_seed_stage_list(self):
        assert [spec.id for spec in registry.load_all()] == SEED_STAGES

    def test_figure_experiments_declare_their_workload(self):
        assert registry.get("FIG-10").workloads == ("paper",)
        assert registry.get("FIG-11").workloads == ("paper",)

    def test_sharded_specs_are_complete(self):
        for spec in registry.load_all():
            if spec.shards:
                assert spec.shard_runner and spec.merger

    def test_shards_without_merger_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ExperimentSpec(id="X", figure="f", title="t",
                           description="d", runner=lambda ctx: None,
                           shards=(1, 2))

    def test_select_only_and_skip(self):
        only = registry.select(only=["tab-addr", "FIG-10"])
        assert [spec.id for spec in only] == ["FIG-10", "TAB-ADDR"]
        skipped = registry.select(skip=["FIG-10", "FIG-11"])
        assert [spec.id for spec in skipped] == SEED_STAGES[2:]
        with pytest.raises(KeyError, match="TAB-NOPE"):
            registry.select(only=["TAB-NOPE"])

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("FIG-99")


class TestRunContext:
    def test_events_go_through_the_store(self, tmp_path):
        ctx = RunContext(quick=True, trace_dir=str(tmp_path))
        events = ctx.events("monomorphic")
        assert len(events) == 5_000  # the quick override
        assert ctx.store.generated == 1
        # A rebuilt context (a worker process) loads from disk.
        worker = RunContext(**ctx.pool_args())
        assert worker.events("monomorphic") == events
        assert worker.store.generated == 0

    def test_pool_args_round_trip(self):
        ctx = RunContext(scale=2, quick=True, trace_dir="/tmp/x")
        assert RunContext(**ctx.pool_args()) == ctx


class TestHarnessEngine:
    def test_selected_run_keeps_suite_order(self, tmp_path):
        stream = io.StringIO()
        results = run_all(stream=stream, only=list(reversed(LIGHT)),
                          trace_dir=str(tmp_path))
        ids = [result.experiment.split()[0] for result in results]
        assert ids == ["TAB-CCACHE", "TAB-ADDR"]
        assert all(result.all_hold for result in results)
        assert "SUMMARY" in stream.getvalue()

    def test_parallel_run_matches_serial(self, tmp_path):
        serial = run_all(stream=io.StringIO(), only=LIGHT,
                         trace_dir=str(tmp_path))
        parallel = run_all(stream=io.StringIO(), only=LIGHT,
                           trace_dir=str(tmp_path), jobs=2)
        assert [r.experiment for r in serial] == \
            [r.experiment for r in parallel]
        assert [(c.claim, c.holds) for r in serial for c in r.claims] \
            == [(c.claim, c.holds) for r in parallel for c in r.claims]

    def test_list_experiments_prints_suite(self):
        stream = io.StringIO()
        list_experiments(stream)
        output = stream.getvalue()
        for exp_id in SEED_STAGES:
            assert exp_id in output


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("paper", "megamorphic", "redefine-churn"):
            assert name in output
        assert "FIG-10" in output

    def test_run_list_flag(self, capsys):
        assert cli_main(["run", "--list"]) == 0
        assert "TAB-3ADDR" in capsys.readouterr().out

    def test_trace_materializes_and_hits(self, tmp_path, capsys):
        args = ["trace", "monomorphic", "--set", "length=400",
                "--trace-dir", str(tmp_path)]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "generated" in first and "400 events" in first
        assert cli_main(args) == 0
        assert "cache hit" in capsys.readouterr().out
        assert list(tmp_path.glob("**/monomorphic-*.trace"))

    def test_trace_unknown_workload_raises(self, tmp_path):
        with pytest.raises(KeyError):
            cli_main(["trace", "nope", "--trace-dir", str(tmp_path)])

    def test_run_only_light_experiment(self, tmp_path, capsys):
        assert cli_main(["run", "--only", "TAB-ADDR",
                         "--trace-dir", str(tmp_path)]) == 0
        assert "paper claims reproduced" in capsys.readouterr().out

    def test_bench_requires_benchmarks_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["bench"]) == 2
