"""Telemetry core: spans, metrics, shard merging, report, CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import cli, telemetry
from repro.telemetry import report as telemetry_report


@pytest.fixture(autouse=True)
def _clean_telemetry_state(monkeypatch):
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    monkeypatch.setattr(telemetry, "_RECORDER", None)
    monkeypatch.setattr(telemetry, "_SOURCE", None)
    yield
    telemetry.install(None)


def _read_spans(directory):
    records = []
    for path in sorted(Path(directory).glob("spans*.jsonl")):
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
    return records


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        assert not telemetry.enabled()
        first = telemetry.span("a", x=1)
        second = telemetry.span("b")
        assert first is second  # no allocation on the disabled path

    def test_disabled_calls_create_no_files_and_no_recorder(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with telemetry.span("work", detail=1):
            telemetry.inc("counter", 3, label="x")
            telemetry.gauge("gauge", 1.5)
            telemetry.observe("hist", 2.0)
            telemetry.event("marker")
        telemetry.flush()
        assert telemetry._RECORDER is None
        assert telemetry.active_directory() is None
        assert list(tmp_path.iterdir()) == []

    def test_noop_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with telemetry.span("work"):
                raise ValueError("boom")


class TestSpans:
    def test_nested_spans_record_parent_linkage(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("outer", kind="test") as outer:
            with telemetry.span("inner"):
                pass
        records = _read_spans(tmp_path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer_rec = records
        assert inner["parent"] == outer.id
        assert outer_rec["parent"] is None
        assert outer_rec["status"] == "ok"
        assert outer_rec["attrs"] == {"kind": "test"}
        assert inner["dur"] <= outer_rec["dur"]
        assert all(r["pid"] == os.getpid() for r in records)

    def test_exception_stamps_error_status_and_propagates(
            self, tmp_path):
        telemetry.install(tmp_path)
        with pytest.raises(KeyError):
            with telemetry.span("work"):
                raise KeyError("gone")
        (record,) = _read_spans(tmp_path)
        assert record["status"] == "error:KeyError"

    def test_set_attaches_mid_span_attributes(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("work") as sp:
            sp.set(outcome="hit", events=7)
        (record,) = _read_spans(tmp_path)
        assert record["attrs"] == {"outcome": "hit", "events": 7}

    def test_events_are_point_markers(self, tmp_path):
        telemetry.install(tmp_path)
        telemetry.event("fault.fired", site="worker.task")
        (record,) = _read_spans(tmp_path)
        assert record["kind"] == "event"
        assert record["attrs"] == {"site": "worker.task"}


class TestMetrics:
    def test_counters_gauges_histograms_flush_to_shard(self, tmp_path):
        telemetry.install(tmp_path)
        telemetry.inc("hits")
        telemetry.inc("hits", 2)
        telemetry.inc("hits", 1, engine="numpy")
        telemetry.gauge("wall", 1.5)
        telemetry.observe("rate", 10.0, cache="itlb")
        telemetry.observe("rate", 30.0, cache="itlb")
        telemetry.flush()
        (shard,) = tmp_path.glob("metrics-*.json")
        data = json.loads(shard.read_text())
        assert data["counters"] == {"hits": 3, "hits{engine=numpy}": 1}
        assert data["gauges"] == {"wall": 1.5}
        assert data["histograms"]["rate{cache=itlb}"] == {
            "count": 2, "sum": 40.0, "min": 10.0, "max": 30.0}

    def test_metric_key_roundtrip(self):
        assert telemetry.split_metric_key("a.b") == ("a.b", {})
        assert telemetry.split_metric_key(
            "a{cache=itlb,engine=numpy}") == (
                "a", {"cache": "itlb", "engine": "numpy"})

    def test_merge_metrics_sums_counters_and_combines_histograms(self):
        target = {"counters": {"a": 1}, "gauges": {"g": 1},
                  "histograms": {"h": {"count": 1, "sum": 5.0,
                                       "min": 5.0, "max": 5.0}}}
        shard = {"counters": {"a": 2, "b": 4}, "gauges": {"g": 9},
                 "histograms": {"h": {"count": 2, "sum": 3.0,
                                      "min": 1.0, "max": 2.0}}}
        merged = telemetry.merge_metrics(target, shard)
        assert merged["counters"] == {"a": 3, "b": 4}
        assert merged["gauges"] == {"g": 9}
        assert merged["histograms"]["h"] == {
            "count": 3, "sum": 8.0, "min": 1.0, "max": 5.0}


class TestMergeAndFinalize:
    def test_finalize_merges_shards_and_deletes_them(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("work"):
            telemetry.inc("n")
        merged = telemetry.finalize()
        assert merged["counters"] == {"n": 1}
        assert (tmp_path / telemetry.SPANS_FILE).exists()
        assert (tmp_path / telemetry.METRICS_FILE).exists()
        assert (tmp_path / telemetry.ENVIRONMENT_FILE).exists()
        assert not list(tmp_path.glob("spans-*.jsonl"))
        assert not list(tmp_path.glob("metrics-*.json"))

    def test_finalize_is_idempotent_by_span_id(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("work"):
            pass
        telemetry.finalize()
        first = (tmp_path / telemetry.SPANS_FILE).read_text()
        # A second finalize (e.g. a resume re-merging a canonical
        # file alongside a stale shard copy) must not duplicate.
        shard = tmp_path / "spans-999-deadbeef.jsonl"
        shard.write_text(first)
        telemetry.finalize()
        assert (tmp_path / telemetry.SPANS_FILE).read_text() == first

    def test_spans_after_finalize_open_a_fresh_shard(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("first"):
            pass
        telemetry.finalize()
        with telemetry.span("second"):
            pass
        assert list(tmp_path.glob("spans-*.jsonl"))
        merged = [json.loads(line) for line in
                  (tmp_path / telemetry.SPANS_FILE)
                  .read_text().splitlines()]
        assert [r["name"] for r in merged] == ["first"]

    def test_environment_block_records_numpy_presence(self):
        block = telemetry.environment_block()
        assert "numpy" in block
        assert block["python"]
        try:
            import numpy
            assert block["numpy"] == numpy.__version__
        except ImportError:
            assert block["numpy"] is None


class TestProcessHandoff:
    def test_child_process_arms_from_environment(self, tmp_path):
        telemetry.install(tmp_path)
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        code = ("from repro import telemetry\n"
                "assert telemetry.enabled()\n"
                "with telemetry.span('child.work'):\n"
                "    telemetry.inc('child.counter')\n"
                "telemetry.flush()\n")
        subprocess.run([sys.executable, "-c", code], env=env,
                       check=True)
        merged = telemetry.finalize()
        assert merged["counters"]["child.counter"] == 1
        names = [json.loads(line)["name"] for line in
                 (tmp_path / telemetry.SPANS_FILE)
                 .read_text().splitlines()]
        assert "child.work" in names

    def test_recorder_rebuilds_after_simulated_fork(self, tmp_path):
        telemetry.install(tmp_path)
        with telemetry.span("parent.work"):
            pass
        parent = telemetry._current()
        # A forked child inherits the module state but has a new pid:
        # the lazy lookup must hand it a fresh recorder (new shard,
        # non-colliding span ids), never the parent's.
        parent.pid = os.getpid() + 1
        child = telemetry._current()
        assert child is not parent
        assert child.pid == os.getpid()


class TestReport:
    def _run(self, run_root):
        run_dir = run_root / "abc123"
        telemetry.install(run_dir / "telemetry")
        with telemetry.span("harness.run", jobs=1):
            with telemetry.span("harness.task", task="FIG-10",
                                mode="serial"):
                telemetry.inc("harness.tasks")
                with telemetry.span("sweep.run", cache="itlb"):
                    pass
        telemetry.inc("store.hit", 3)
        telemetry.inc("store.miss", 1)
        telemetry.finalize()
        telemetry.install(None)
        return run_dir

    def test_build_report_tree_reconciles_with_wall(self, tmp_path):
        run_dir = self._run(tmp_path)
        data = telemetry_report.load_run(run_dir)
        report = telemetry_report.build_report(data)
        assert report["run"] == "abc123"
        assert report["wall_seconds"] > 0
        paths = {p["path"]: p for p in report["phases"]}
        assert paths["harness.run"]["fraction_of_wall"] == 1.0
        assert ("harness.run/harness.task/sweep.run" in paths)
        # Self time never exceeds total, children nest under parent.
        for phase in report["phases"]:
            assert phase["self_seconds"] <= phase["total_seconds"] + 1e-9
        assert report["task_spans"] == 1
        assert report["task_counter"] == 1
        assert report["store"]["hit_rate"] == 0.75
        (slowest,) = report["slowest_tasks"]
        assert slowest["task"] == "FIG-10"
        text = telemetry_report.render(report)
        assert "phase-time breakdown" in text
        assert "MISMATCH" not in text

    def test_load_run_reads_unmerged_shards_nondestructively(
            self, tmp_path):
        run_dir = tmp_path / "xyz"
        telemetry.install(run_dir / "telemetry")
        with telemetry.span("harness.run"):
            pass
        telemetry.flush()
        # No finalize: the run "crashed".  Reporting still works and
        # leaves the shards in place.
        data = telemetry_report.load_run(run_dir)
        assert [s["name"] for s in data["spans"]] == ["harness.run"]
        assert list((run_dir / "telemetry").glob("spans-*.jsonl"))

    def test_find_run_directory_prefers_newest_and_honors_prefix(
            self, tmp_path):
        old = tmp_path / "aaa111" / "telemetry"
        new = tmp_path / "bbb222" / "telemetry"
        old.mkdir(parents=True)
        new.mkdir(parents=True)
        os.utime(old, (1, 1))
        assert telemetry_report.find_run_directory(
            tmp_path).name == "bbb222"
        assert telemetry_report.find_run_directory(
            tmp_path, run="aaa").name == "aaa111"
        with pytest.raises(FileNotFoundError):
            telemetry_report.find_run_directory(tmp_path, run="zzz")


class TestCli:
    def test_version_flag_prints_versioned_surfaces(self, capsys):
        assert cli.main(["--version"]) == 0
        out = capsys.readouterr().out
        assert f"repro {repro.__version__}" in out
        assert "trace format:" in out
        assert "semantics:" in out
        assert "engines:" in out

    def test_list_versions_matches_version_flag(self, capsys):
        assert cli.main(["--version"]) == 0
        version_out = capsys.readouterr().out
        assert cli.main(["list", "--versions"]) == 0
        assert capsys.readouterr().out == version_out

    def test_report_without_telemetry_runs_errors_cleanly(
            self, tmp_path, capsys):
        code = cli.main(["report", "--run-dir", str(tmp_path)])
        assert code == 2
        assert "repro run --telemetry" in capsys.readouterr().err

    def test_report_renders_text_and_json(self, tmp_path, capsys):
        run_dir = tmp_path / "feed01"
        telemetry.install(run_dir / "telemetry")
        with telemetry.span("harness.run"):
            telemetry.inc("harness.tasks")
        telemetry.finalize()
        telemetry.install(None)
        assert cli.main(["report", "--run-dir", str(tmp_path)]) == 0
        assert "phase-time breakdown" in capsys.readouterr().out
        assert cli.main(["report", "--run-dir", str(tmp_path),
                         "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["run"] == "feed01"
        assert document["span_count"] == 1
