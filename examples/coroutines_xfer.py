"""General control transfer with XFER: a coroutine on the COM.

Section 5: "The contexts in COM support a general control transfer
similar to Lampson's XFER instruction.  This control transfer supports
block contexts in Smalltalk, process switch, and interrupts."

The program below builds a suspended computation: ``park`` publishes a
pointer to its own context (making it non-LIFO -- the context cache and
recycler must keep it alive), yields back to its caller with ``xfer``,
and is later resumed by a second ``xfer``, finally returning a value
through the ordinary result-pointer path.

Run:  python examples/coroutines_xfer.py
"""

from repro import load_program, make_com

PROGRAM = """
method Object >> park args=1
    ; c1 = a one-slot mailbox object.
    c3 = & c3            ; a capability for this very context
    c1 [ 0 ] = c3        ; publish it (this captures the context)
    c4 = c3 [ -5 ]       ; read our own RCP (word 0 of the context)
    xfer c4              ; yield to the caller
    ; ---- resumed here by a later xfer ----
    c0 = 42              ; deliver the answer through the result pointer
    ret 42

main
    c2 = #Array new: 1   ; the mailbox
    c3 = c2 park c2      ; call park; it yields before producing c3
    c4 = c2 [ 0 ]        ; fetch the parked context's capability
    xfer c4              ; resume it; its ret brings us back here
    c0 = c3
    halt
"""


def main() -> None:
    machine = make_com()
    entry = load_program(machine, PROGRAM)
    result = machine.run_program(entry)
    print(f"value delivered by the resumed coroutine: {result.value}")

    stats = machine.recycler.stats
    print("\n-- storage management consequences (section 2.3) --")
    print(f"contexts allocated:      {stats.allocated}")
    print(f"freed on the LIFO path:  {stats.freed_lifo}")
    print(f"non-LIFO (left for GC):  {stats.returned_non_lifo}")
    print("\nThe captured context could not be recycled on return; the")
    print("context cache kept it resident under its absolute address")
    print("(no invalidation needed -- the directory associates on")
    print("absolute addresses, section 2.3's advantage #2).")


if __name__ == "__main__":
    main()
