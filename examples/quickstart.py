"""Quickstart: assemble, run and inspect a COM program.

Demonstrates the lowest-level public API: the textual assembler, the
machine's cycle accounting and the figure-6 pipeline diagram.

Run:  python examples/quickstart.py
"""

from repro import load_program, make_com, pipeline_diagram

PROGRAM = """
; Compute 10 factorial with a recursive method on SmallInteger.
method SmallInteger >> fact args=1
    c2 = c1 < 2          ; base case test
    jt c2 base
    c3 = c1 - 1
    c4 = c3 fact c3      ; abstract instruction: late-bound send
    c5 = c1 * c4
    ret c5
    base:
    ret 1

main
    c2 = 10 fact 10
    c0 = c2              ; store through the result pointer
    halt
"""


def main() -> None:
    machine = make_com()
    program = load_program(machine, PROGRAM)
    result = machine.run_program(program)
    print(f"10 factorial = {result.value}")

    snapshot = machine.cycles.snapshot()
    print("\n-- cycle accounting (section 3.6 cost model) --")
    print(f"instructions: {snapshot['instructions']}")
    print(f"cycles:       {snapshot['cycles']}  "
          f"(cpi {snapshot['cpi']:.2f})")
    print(f"calls:        {snapshot['calls']}, "
          f"returns: {snapshot['returns']}")
    for reason, cycles in sorted(snapshot["stalls"].items()):
        print(f"  stall {reason:<14} {cycles} cycles")

    print("\n-- caches --")
    print(f"ITLB:   {machine.itlb.stats}")
    print(f"icache: {machine.icache.stats}")
    print(f"context cache: faults={machine.context_cache.stats.faults} "
          f"copybacks={machine.context_cache.stats.copybacks}")
    print(f"LIFO contexts: "
          f"{machine.recycler.stats.lifo_fraction:.0%}")

    print("\n-- the five-step pipeline (figure 6) --")
    print(pipeline_diagram(3))


if __name__ == "__main__":
    main()
