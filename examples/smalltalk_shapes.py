"""A Smalltalk application on the COM: polymorphic shapes.

This is the workload class the paper's introduction motivates: late
binding everywhere (the same ``area`` selector dispatched across a
class hierarchy), with the ITLB keeping method lookup off the critical
path.  The script runs the program, then shows what the hardware did.

Run:  python examples/smalltalk_shapes.py
"""

from repro import make_com
from repro.smalltalk import compile_program

PROGRAM = """
class Shape extends Object
class Circle extends Shape fields: radius
class Square extends Shape fields: side
class Ring extends Circle fields: hole

Circle >> setRadius: r
    radius := r. ^self
Circle >> area
    ^radius * radius * 3

Square >> setSide: s
    side := s. ^self
Square >> area
    ^side * side

Ring >> setRadius: r hole: h
    radius := r. hole := h. ^self
Ring >> area
    "Inherited radius field; overridden area."
    ^(radius * radius * 3) - (hole * hole * 3)

main | shapes total i |
    shapes := Array new: 9.
    i := 0.
    [i < 9] whileTrue: [
        (i \\\\ 3) = 0 ifTrue: [
            shapes at: i put: (Circle new setRadius: i + 1)].
        (i \\\\ 3) = 1 ifTrue: [
            shapes at: i put: (Square new setSide: i + 1)].
        (i \\\\ 3) = 2 ifTrue: [
            shapes at: i put: (Ring new setRadius: i + 2 hole: 1)].
        i := i + 1
    ].
    total := 0.
    0 to: 8 do: [:k | total := total + (shapes at: k) area].
    ^total
"""


def main() -> None:
    machine = make_com()
    entry = compile_program(machine, PROGRAM)
    result = machine.run_program(entry)
    print(f"total area of 9 polymorphic shapes: {result.value}")

    print("\n-- abstract-instruction dispatch --")
    print(f"ITLB: {machine.itlb.stats}")
    print(f"full method lookups taken (ITLB misses): "
          f"{machine.registry.full_lookups}")
    selector_area = machine.opcodes.number_of("area")
    itlb_area_keys = [key for key, _ in machine.itlb._cache.items()
                      if key[0] == selector_area]
    print(f"distinct (area, receiver-class) ITLB entries: "
          f"{len(itlb_area_keys)}")
    for key in sorted(itlb_area_keys):
        cls = machine.registry.by_tag(key[1][0])
        print(f"  area x {cls.name}")

    print("\n-- the context machinery (section 2.3) --")
    print(f"activations: {machine.activation_count}, "
          f"LIFO fraction: {machine.recycler.stats.lifo_fraction:.0%}")
    print(f"context references: "
          f"{machine.profile.context_fraction:.1%} of data references")
    print(f"cycles/instruction: "
          f"{machine.cycles.cycles_per_instruction:.2f}")


if __name__ == "__main__":
    main()
