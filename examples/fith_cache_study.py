"""Reproduce the section-5 methodology end to end on one Fith program.

Writes a Fith program (Forth syntax, Smalltalk semantics), traces its
execution -- recording, per instruction: address, opcode and the class
of the top of stack -- and replays the trace against ITLB and
instruction-cache models across the paper's size sweep.

Run:  python examples/fith_cache_study.py
"""

from repro import make_fith
from repro.trace.cachesim import ascii_plot, sweep_icache, sweep_itlb

PROGRAM = """
\\ A polymorphic queue simulation: three task classes, one 'work' verb.
class Quick 1
class Slow 1
class Batch 1

:: Quick work   dup 0 at 1 + over swap 0 swap put drop ;
:: Slow work    dup 0 at 2 + over swap 0 swap put drop ;
:: Batch work   dup 0 at 5 + over swap 0 swap put drop ;

variable tasks
9 array tasks !
: setup
    9 0 do
        i 3 mod 0 = if #Quick new else
        i 3 mod 1 = if #Slow new else #Batch new then then
        dup 0 0 put
        tasks @ i rot put
    loop ;
: run-round  9 0 do tasks @ i at work loop ;
: total ( -- n )
    0 9 0 do tasks @ i at 0 at + loop ;

setup
200 0 do run-round loop
total .
"""


def main() -> None:
    machine = make_fith(trace=True)
    machine.run_source(PROGRAM, max_steps=10_000_000)
    print(f"total work units: {machine.output[0].value}")
    events = machine.trace
    dispatched = [event for event in events if event.dispatched]
    print(f"trace: {len(events)} instructions, "
          f"{len(dispatched)} dispatched, "
          f"{len({e.itlb_key for e in dispatched})} distinct ITLB keys, "
          f"{len({e.address for e in events})} distinct addresses")

    sizes = tuple(1 << k for k in range(3, 11))
    itlb = sweep_itlb(events, sizes=sizes, double_pass=True)
    print()
    print(itlb.table())
    print()
    print(ascii_plot(itlb, width=48, height=12))

    icache = sweep_icache(events, sizes=sizes, double_pass=True)
    print()
    print(icache.table())


if __name__ == "__main__":
    main()
