"""Reproduce the section-5 methodology end to end on one Fith program.

Writes a Fith program (Forth syntax, Smalltalk semantics), traces its
execution -- recording, per instruction: address, opcode and the class
of the top of stack -- and replays the trace through the single-pass
sweep engine (repro.sweep): one declared hierarchy (ITLB level +
instruction-cache level) yields the full size x associativity
hit-ratio surface per level, with fully-associative LRU and
OPT/Belady reference columns, from a single replay of the trace per
level instead of one per configuration.

Run:  python examples/fith_cache_study.py
"""

from repro import make_fith
from repro.sweep import HierarchySpec, SweepSpec, run_hierarchy
from repro.trace.cachesim import ascii_plot

PROGRAM = """
\\ A polymorphic queue simulation: three task classes, one 'work' verb.
class Quick 1
class Slow 1
class Batch 1

:: Quick work   dup 0 at 1 + over swap 0 swap put drop ;
:: Slow work    dup 0 at 2 + over swap 0 swap put drop ;
:: Batch work   dup 0 at 5 + over swap 0 swap put drop ;

variable tasks
9 array tasks !
: setup
    9 0 do
        i 3 mod 0 = if #Quick new else
        i 3 mod 1 = if #Slow new else #Batch new then then
        dup 0 0 put
        tasks @ i rot put
    loop ;
: run-round  9 0 do tasks @ i at work loop ;
: total ( -- n )
    0 9 0 do tasks @ i at 0 at + loop ;

setup
200 0 do run-round loop
total .
"""


def main() -> None:
    machine = make_fith(trace=True)
    machine.run_source(PROGRAM, max_steps=10_000_000)
    print(f"total work units: {machine.output[0].value}")
    events = machine.trace.snapshot()
    stats = events.stats()
    print(f"trace: {stats['events']} instructions, "
          f"{stats['dispatched']} dispatched, "
          f"{stats['unique_itlb_keys']} distinct ITLB keys, "
          f"{stats['unique_addresses']} distinct addresses")

    sizes = tuple(1 << k for k in range(3, 11))
    study = HierarchySpec(
        name="fith-cache-study",
        description="section-5 methodology on one polymorphic program",
        levels=(
            SweepSpec(cache="itlb", sizes=sizes, double_pass=True,
                      include_full=True, include_opt=True),
            SweepSpec(cache="icache", sizes=sizes, double_pass=True,
                      include_full=True, include_opt=True),
        ),
    )
    itlb, icache = run_hierarchy(study, events)

    print()
    print(itlb.table())
    print(f"(engine: {itlb.meta['engine']}, "
          f"{itlb.meta['trace_passes']} simulation passes for "
          f"{len(sizes) * 3 + len(sizes)} LRU configurations)")
    print()
    print(ascii_plot(itlb.to_sweep_result(), width=48, height=12))

    print()
    print(icache.table())
    target = 0.99
    reach = icache.isoratio(target)
    print(f"(99% thresholds: " + ", ".join(
        f"{assoc if assoc == 'full' else f'{assoc}-way'} at "
        f"{size if size is not None else '> ' + str(sizes[-1])}"
        for assoc, size in reach.items()) + ")")


if __name__ == "__main__":
    main()
