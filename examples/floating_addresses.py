"""Floating point addresses and the small object problem (section 2.2).

Walks through the paper's worked example (0x8345), the MULTICS
comparison, allocating a mixed small/large object population, and the
alias-forwarding protocol when an object outgrows its pointer.

Run:  python examples/floating_addresses.py
"""

from repro.memory.fpa import (
    FORMAT_16,
    address_format,
    floating_capacity,
    multics_style_capacity,
)
from repro.memory.mmu import MMU
from repro.memory.tags import Word


def worked_example() -> None:
    print("-- the paper's worked example --")
    address = FORMAT_16.from_packed(0x8345)
    print(f"16-bit address 0x8345: exponent={address.exponent}, "
          f"offset={address.offset:#x}, "
          f"segment name={address.packed_segment_name:#x}")


def capacity_comparison() -> None:
    print("\n-- 36-bit capacity: fixed fields vs floating --")
    multics_segments, multics_words = multics_style_capacity(36)
    floating_names, floating_words = floating_capacity(36)
    print(f"MULTICS-style: {multics_segments:>13,} segments of "
          f"<= {multics_words:,} words")
    print(f"floating:      {floating_names:>13,} segments of "
          f"<= {floating_words:,} words")


def small_object_population() -> None:
    print("\n-- one name space, tiny and huge objects --")
    mmu = MMU(address_format(36), arena_words=1 << 22)
    cons_cells = [mmu.allocate_object(0, 2, class_tag=20)
                  for _ in range(5)]
    image = mmu.allocate_object(0, 1 << 20, class_tag=21)
    for index, cell in enumerate(cons_cells):
        print(f"cons cell {index}: exponent {cell.exponent}, "
              f"segment {cell.segment_name}")
    print(f"1M-word image: exponent {image.exponent}, "
          f"segment {image.segment_name}")
    mmu.write(0, image.step(999_999), Word.small_integer(7))
    print(f"image[999999] = {mmu.read(0, image.step(999_999)).value}")


def alias_forwarding() -> None:
    print("\n-- growing an object out of its exponent (aliasing) --")
    mmu = MMU(address_format(36), arena_words=1 << 22)
    vector = mmu.allocate_object(0, 4, class_tag=22)
    mmu.write(0, vector.step(2), Word.small_integer(42))
    print(f"allocated 4-word vector: exponent {vector.exponent}")
    grown = mmu.grow_object(0, vector, 1000)
    print(f"grown to 1000 words: new exponent {grown.exponent} "
          f"(new segment name {grown.segment_name})")
    print(f"old pointer still reads word 2: "
          f"{mmu.read(0, vector.step(2)).value}")
    print(f"old descriptor forwards to: "
          f"{mmu.forward_of(0, vector).segment_name}")
    mmu.write(0, grown.step(900), Word.small_integer(99))
    print(f"new pointer reaches word 900: "
          f"{mmu.read(0, grown.step(900)).value}")


def main() -> None:
    worked_example()
    capacity_comparison()
    small_object_population()
    alias_forwarding()


if __name__ == "__main__":
    main()
